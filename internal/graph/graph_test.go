package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge, weighted bool) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges, weighted)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1, 5}, {0, 2, 3}, {1, 2, 1}, {3, 0, 2}}, true)
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(2) != 0 || g.OutDegree(3) != 1 {
		t.Error("degrees wrong")
	}
	ts, ws := g.Neighbors(0)
	if len(ts) != 2 || len(ws) != 2 {
		t.Fatalf("neighbors of 0: %v %v", ts, ws)
	}
	got := map[int32]float64{ts[0]: ws[0], ts[1]: ws[1]}
	if got[1] != 5 || got[2] != 3 {
		t.Errorf("neighbor weights: %v", got)
	}
	if !g.Weighted() {
		t.Error("should be weighted")
	}
}

func TestFromEdgesUnweighted(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1, 9}, {1, 2, 9}}, false)
	if g.Weighted() {
		t.Error("weights should be dropped")
	}
	if w := g.Weight(0); w != 1 {
		t.Errorf("unweighted Weight = %v, want 1", w)
	}
	_, ws := g.Neighbors(0)
	if ws != nil {
		t.Error("weights slice should be nil")
	}
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5, 1}}, false); err == nil {
		t.Error("out-of-range dst should fail")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0, 1}}, false); err == nil {
		t.Error("negative src should fail")
	}
	if _, err := FromEdges(-1, nil, false); err == nil {
		t.Error("negative n should fail")
	}
	g := mustGraph(t, 3, nil, false)
	if g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Error("empty graph")
	}
}

func TestReverse(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1, 2}, {0, 2, 3}, {1, 2, 4}}, true)
	r := g.Reverse()
	if r.OutDegree(2) != 2 || r.OutDegree(0) != 0 {
		t.Errorf("reverse degrees wrong")
	}
	ts, ws := r.Neighbors(2)
	sum := 0.0
	for i := range ts {
		sum += ws[i]
	}
	if sum != 7 {
		t.Errorf("reverse weights = %v", ws)
	}
	// Double reverse restores the edge multiset.
	rr := r.Reverse()
	if rr.NumEdges() != g.NumEdges() {
		t.Error("double reverse changed edge count")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1, 5}, {2, 0, 1}, {1, 2, 7}}
	g := mustGraph(t, 3, orig, true)
	back := g.Edges()
	if len(back) != len(orig) {
		t.Fatalf("edge count %d", len(back))
	}
	seen := map[Edge]bool{}
	for _, e := range back {
		seen[e] = true
	}
	for _, e := range orig {
		if !seen[e] {
			t.Errorf("missing edge %v", e)
		}
	}
}

func TestLoadTSV(t *testing.T) {
	src := `
# comment
% another comment
0	1	5.5
1	2
2	0	3
`
	g, err := LoadTSV(strings.NewReader(src), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	ts, ws := g.Neighbors(0)
	if ts[0] != 1 || ws[0] != 5.5 {
		t.Errorf("edge 0: %v %v", ts, ws)
	}
	// Missing weight defaults to 1.
	_, ws = g.Neighbors(1)
	if ws[0] != 1 {
		t.Errorf("default weight = %v", ws[0])
	}
}

func TestLoadTSVErrors(t *testing.T) {
	for _, src := range []string{"0\n", "a b\n", "0 b\n", "0 1 x\n"} {
		if _, err := LoadTSV(strings.NewReader(src), 0, true); err == nil {
			t.Errorf("LoadTSV(%q) should fail", src)
		}
	}
}

func TestWriteTSVRoundTrip(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1, 2.5}, {1, 3, 1}, {3, 2, 9}}, true)
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadTSV(&buf, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Error("round trip changed shape")
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Errorf("edge %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestSortNeighbors(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 3, 30}, {0, 1, 10}, {0, 2, 20}}, true)
	g.SortNeighbors()
	ts, ws := g.Neighbors(0)
	for i := 0; i < len(ts); i++ {
		if ts[i] != int32(i+1) || ws[i] != float64((i+1)*10) {
			t.Fatalf("sorted neighbors wrong: %v %v", ts, ws)
		}
	}
}

func TestPartition(t *testing.T) {
	for k := 1; k <= 7; k++ {
		counts := make([]int, k)
		for v := int64(0); v < 1000; v++ {
			p := Partition(v, k)
			if p < 0 || p >= k {
				t.Fatalf("Partition(%d,%d) = %d", v, k, p)
			}
			counts[p]++
		}
		for _, c := range counts {
			if c == 0 {
				t.Errorf("k=%d: empty partition", k)
			}
		}
	}
}

func TestQuickCSRPreservesEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		m := rng.Intn(200)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n)), W: float64(rng.Intn(100))}
		}
		g, err := FromEdges(n, edges, true)
		if err != nil {
			return false
		}
		if g.NumEdges() != m {
			return false
		}
		// Degree sum equals edge count.
		total := 0
		for v := 0; v < n; v++ {
			total += g.OutDegree(int32(v))
		}
		if total != m {
			return false
		}
		// Every input edge is present.
		want := map[Edge]int{}
		for _, e := range edges {
			want[e]++
		}
		for _, e := range g.Edges() {
			want[e]--
		}
		for _, c := range want {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
