package graph

import "testing"

func mutGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(5, []Edge{
		{Src: 0, Dst: 1, W: 1},
		{Src: 0, Dst: 1, W: 2}, // parallel edge
		{Src: 1, Dst: 2, W: 3},
		{Src: 2, Dst: 3, W: 4},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyEdgeMutationsDeleteRemovesAllParallel(t *testing.T) {
	g := mutGraph(t)
	if err := g.ApplyEdgeMutations(nil, []Edge{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (both parallel (0,1) edges gone)", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Src == 0 && e.Dst == 1 {
			t.Fatalf("edge (0,1) survived the delete")
		}
	}
}

func TestApplyEdgeMutationsInsertAfterDelete(t *testing.T) {
	g := mutGraph(t)
	// Deleting and re-inserting the same pair in one batch keeps the
	// insert (deletes are applied first).
	err := g.ApplyEdgeMutations([]Edge{{Src: 0, Dst: 1, W: 9}, {Src: 3, Dst: 4, W: 5}},
		[]Edge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	tg, ws := g.Neighbors(0)
	if len(tg) != 1 || tg[0] != 1 || ws[0] != 9 {
		t.Fatalf("neighbors(0) = %v %v, want the re-inserted (0,1,9)", tg, ws)
	}
	if lo, hi := g.EdgeRange(3); hi-lo != 1 || g.Target(lo) != 4 || g.Weight(lo) != 5 {
		t.Fatalf("inserted edge (3,4,5) missing")
	}
}

func TestApplyEdgeMutationsRejectsOutOfUniverse(t *testing.T) {
	g := mutGraph(t)
	before := g.NumEdges()
	for _, bad := range [][2][]Edge{
		{{{Src: 5, Dst: 0}}, nil},  // insert src out of range
		{{{Src: 0, Dst: -1}}, nil}, // insert dst out of range
		{nil, {{Src: 0, Dst: 7}}},  // delete out of range
	} {
		if err := g.ApplyEdgeMutations(bad[0], bad[1]); err == nil {
			t.Fatalf("mutation %v accepted", bad)
		}
		if g.NumEdges() != before {
			t.Fatalf("failed mutation modified the graph")
		}
	}
}

func TestApplyEdgeMutationsUnweighted(t *testing.T) {
	g, err := FromEdges(3, []Edge{{Src: 0, Dst: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyEdgeMutations([]Edge{{Src: 1, Dst: 2, W: 99}}, nil); err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("mutation made an unweighted graph weighted")
	}
	if lo, _ := g.EdgeRange(1); g.Weight(lo) != 1 {
		t.Fatalf("unweighted weight = %v, want 1", g.Weight(0))
	}
}
