package graph

import "fmt"

// ApplyEdgeMutations rebuilds the CSR arrays in place behind the same
// *Graph pointer: first every (src,dst) pair named in deletes is removed
// (all parallel edges with that endpoint pair, regardless of weight),
// then the inserts are appended. The vertex universe [0,n) is fixed at
// construction time — mutations referencing vertices outside it are
// rejected before anything is modified, so a failed call leaves the
// graph untouched. Compiled plans capture the *Graph, so after a
// successful call every closure sees the mutated adjacency.
//
// Concurrent readers are NOT safe during the call; callers must
// quiesce the engine first (the session layer mutates only while all
// workers are parked).
func (g *Graph) ApplyEdgeMutations(inserts, deletes []Edge) error {
	for _, e := range inserts {
		if e.Src < 0 || e.Src >= g.n || e.Dst < 0 || e.Dst >= g.n {
			return fmt.Errorf("graph: insert edge (%d,%d) outside [0,%d)", e.Src, e.Dst, g.n)
		}
	}
	for _, e := range deletes {
		if e.Src < 0 || e.Src >= g.n || e.Dst < 0 || e.Dst >= g.n {
			return fmt.Errorf("graph: delete edge (%d,%d) outside [0,%d)", e.Src, e.Dst, g.n)
		}
	}
	del := make(map[int64]struct{}, len(deletes))
	for _, e := range deletes {
		del[int64(e.Src)<<32|int64(uint32(e.Dst))] = struct{}{}
	}
	edges := make([]Edge, 0, len(g.targets)+len(inserts))
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			dst := g.targets[i]
			if _, gone := del[int64(v)<<32|int64(uint32(dst))]; gone {
				continue
			}
			edges = append(edges, Edge{Src: v, Dst: dst, W: g.Weight(i)})
		}
	}
	edges = append(edges, inserts...)
	ng, err := FromEdges(int(g.n), edges, g.weights != nil)
	if err != nil {
		return err
	}
	*g = *ng
	return nil
}
