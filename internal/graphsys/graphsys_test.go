package graphsys

import (
	"math"
	"testing"

	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/ref"
)

type runner func(*graph.Graph, *Program) []float64

func engines() map[string]runner {
	return map[string]runner{
		"sync":        RunSync,
		"async":       func(g *graph.Graph, p *Program) []float64 { return RunAsync(g, p, 4) },
		"async1":      func(g *graph.Graph, p *Program) []float64 { return RunAsync(g, p, 1) },
		"prioritized": RunPrioritized,
	}
}

func close1(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	errs := 0
	for i := range want {
		g, w := got[i], want[i]
		if math.IsInf(w, 1) {
			if !math.IsInf(g, 1) && errs < 3 {
				t.Errorf("%s: [%d] = %v, want +Inf", name, i, g)
				errs++
			}
			continue
		}
		if math.Abs(g-w) > tol*math.Max(1, math.Abs(w)) {
			if errs < 3 {
				t.Errorf("%s: [%d] = %v, want %v", name, i, g, w)
			}
			errs++
		}
	}
	if errs > 0 {
		t.Fatalf("%s: %d mismatches", name, errs)
	}
}

func TestSSSPEngines(t *testing.T) {
	g := gen.Uniform(300, 1800, 40, 5)
	want := ref.Dijkstra(g, 0)
	for name, run := range engines() {
		got := run(g, SSSP(0))
		close1(t, name, got, want, 1e-12)
	}
}

func TestCCEngines(t *testing.T) {
	g := gen.RMAT(8, 1200, 0, 7)
	want := ref.MinLabelPropagation(g)
	for name, run := range engines() {
		got := run(g, CC(g))
		close1(t, name, got, want, 0)
	}
}

func TestPageRankEngines(t *testing.T) {
	g := gen.RMAT(8, 1200, 0, 9)
	want := ref.PageRank(g, 500, 1e-10)
	for name, run := range engines() {
		got := run(g, PageRank(g, 1e-5))
		close1(t, name, got, want, 5e-3)
	}
}

func TestKatzEngines(t *testing.T) {
	g := gen.Uniform(200, 1200, 0, 11)
	want := ref.Katz(g, 0, 10000, 500, 1e-10)
	for name, run := range engines() {
		got := run(g, Katz(0, 10000, 0.1, 1e-5))
		close1(t, name, got, want, 1e-2)
	}
}

func TestAdsorptionEngines(t *testing.T) {
	g := gen.Uniform(200, 1200, 1, 13)
	gen.NormalizeWeightsByOut(g, 1)
	n := g.NumVertices()
	pi := gen.VertexAttr(n, 0.1, 0.5, 1)
	pc := gen.VertexAttr(n, 0.2, 0.8, 2)
	inj := make([]float64, n)
	for i := range inj {
		inj[i] = 1
	}
	want := ref.Adsorption(g, inj, pi, pc, 800, 1e-10)
	for name, run := range engines() {
		got := run(g, Adsorption(g, inj, pi, pc, 1e-6))
		close1(t, name, got, want, 5e-3)
	}
}

func TestBPEngines(t *testing.T) {
	g := gen.Uniform(200, 1200, 1, 17)
	gen.NormalizeWeightsByOut(g, 1)
	n := g.NumVertices()
	initial := gen.VertexAttr(n, 0.1, 1, 3)
	h := gen.VertexAttr(n, 0.2, 0.9, 4)
	want := ref.BeliefPropagation(g, initial, h, 800, 1e-10)
	for name, run := range engines() {
		got := run(g, BeliefPropagation(g, initial, h, 1e-6))
		close1(t, name, got, want, 5e-3)
	}
}

func TestMaxRoundsDefault(t *testing.T) {
	p := &Program{}
	if p.maxRounds() != 10000 {
		t.Error("default rounds")
	}
	p.MaxRounds = 7
	if p.maxRounds() != 7 {
		t.Error("explicit rounds")
	}
}
