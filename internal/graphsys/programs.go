package graphsys

import (
	"powerlog/internal/agg"
	"powerlog/internal/graph"
)

// The hand-coded algorithm library: each constructor returns the vertex
// program the comparison systems run in Figure 10 (PowerGraph for SSSP
// and CC, Maiter for PageRank/Adsorption/Katz, Prom for BP).

// SSSP builds the shortest-path program from src.
func SSSP(src int32) *Program {
	return &Program{
		Op:   agg.ByKind(agg.Min),
		Init: []Delta{{V: src, Val: 0}},
		Scatter: func(g *graph.Graph, v int32, d float64, emit func(int32, float64)) {
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				emit(g.Target(e), d+g.Weight(e))
			}
		},
	}
}

// CC builds min-label propagation over directed edges (the paper's
// Program 3 semantics).
func CC(g *graph.Graph) *Program {
	var init []Delta
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.OutDegree(v) > 0 {
			init = append(init, Delta{V: v, Val: float64(v)})
		}
	}
	return &Program{
		Op:   agg.ByKind(agg.Min),
		Init: init,
		Scatter: func(g *graph.Graph, v int32, d float64, emit func(int32, float64)) {
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				emit(g.Target(e), d)
			}
		},
	}
}

// PageRank builds the delta-based accumulative PageRank (Maiter's model;
// the paper's Program 2.b).
func PageRank(g *graph.Graph, eps float64) *Program {
	n := g.NumVertices()
	deg := g.OutDegrees()
	init := make([]Delta, n)
	for v := 0; v < n; v++ {
		init[v] = Delta{V: int32(v), Val: 0.15}
	}
	return &Program{
		Op:      agg.ByKind(agg.Sum),
		Init:    init,
		Epsilon: eps,
		Scatter: func(g *graph.Graph, v int32, d float64, emit func(int32, float64)) {
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				emit(g.Target(e), 0.85*d/deg[v])
			}
		},
	}
}

// Adsorption builds the delta-based label propagation of Program 4.
func Adsorption(g *graph.Graph, inj, pi, pc []float64, eps float64) *Program {
	n := g.NumVertices()
	init := make([]Delta, n)
	for v := 0; v < n; v++ {
		init[v] = Delta{V: int32(v), Val: inj[v] * pi[v]}
	}
	return &Program{
		Op:      agg.ByKind(agg.Sum),
		Init:    init,
		Epsilon: eps,
		Scatter: func(g *graph.Graph, v int32, d float64, emit func(int32, float64)) {
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				emit(g.Target(e), 0.7*d*g.Weight(e)*pc[v])
			}
		},
	}
}

// Katz builds the Katz-metric program of Program 5 with attenuation
// alpha (which must be below 1/λ_max of the graph's adjacency matrix).
func Katz(src int32, seed, alpha, eps float64) *Program {
	return &Program{
		Op:      agg.ByKind(agg.Sum),
		Init:    []Delta{{V: src, Val: seed}},
		Epsilon: eps,
		Scatter: func(g *graph.Graph, v int32, d float64, emit func(int32, float64)) {
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				emit(g.Target(e), alpha*d)
			}
		},
	}
}

// BeliefPropagation builds the vertex-abstracted BP of Program 6.
func BeliefPropagation(g *graph.Graph, initial, h []float64, eps float64) *Program {
	var init []Delta
	for v := 0; v < g.NumVertices(); v++ {
		if initial[v] != 0 {
			init = append(init, Delta{V: int32(v), Val: initial[v]})
		}
	}
	return &Program{
		Op:      agg.ByKind(agg.Sum),
		Init:    init,
		Epsilon: eps,
		Scatter: func(g *graph.Graph, v int32, d float64, emit func(int32, float64)) {
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				emit(g.Target(e), 0.8*d*g.Weight(e)*h[v])
			}
		},
	}
}
