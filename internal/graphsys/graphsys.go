// Package graphsys is a hand-coded vertex-centric graph processing engine
// standing in for the systems the paper compares against in §6.4:
// PowerGraph (sync/async, used for CC and SSSP), Maiter (delta-based
// asynchronous accumulation, used for PageRank, Adsorption, Katz), and
// Prom (prioritized block updates, used for Belief Propagation). Unlike
// the Datalog engine, programs here are written directly in Go against
// arrays — the "tens of lines of code per algorithm" programming model
// the paper's introduction contrasts with Datalog's two rules.
package graphsys

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"powerlog/internal/agg"
	"powerlog/internal/graph"
)

// Delta is an initial contribution to one vertex.
type Delta struct {
	V   int32
	Val float64
}

// Program is a delta-based vertex program: state folds with Op, and a
// drained delta scatters contributions along out-edges.
type Program struct {
	// Op is the state combiner (min for SSSP/CC, sum for the rest).
	Op *agg.Op
	// Init seeds the computation.
	Init []Delta
	// Scatter propagates a drained delta of v to its out-neighbors.
	Scatter func(g *graph.Graph, v int32, delta float64, emit func(dst int32, val float64))
	// Epsilon terminates limit programs when the round change drops below
	// it; 0 runs to fixpoint.
	Epsilon float64
	// MaxRounds caps the iteration count (default 10000).
	MaxRounds int
}

func (p *Program) maxRounds() int {
	if p.MaxRounds > 0 {
		return p.MaxRounds
	}
	return 10000
}

// state is the shared delta-accumulation state used by all three engines.
type state struct {
	op    *agg.Op
	value []uint64 // accumulated result bits
	delta []uint64 // pending delta bits
}

func newState(op *agg.Op, n int) *state {
	s := &state{op: op, value: make([]uint64, n), delta: make([]uint64, n)}
	for i := range s.value {
		agg.Store(&s.value[i], op.Identity())
		agg.Store(&s.delta[i], op.Identity())
	}
	return s
}

func (s *state) values() []float64 {
	out := make([]float64, len(s.value))
	for i := range out {
		out[i] = agg.Load(&s.value[i])
	}
	return out
}

// apply drains v's delta into its value; reports (delta, improved).
func (s *state) apply(v int32) (float64, bool) {
	d := s.op.AtomicExchangeIdentity(&s.delta[v])
	if d == s.op.Identity() {
		return d, false
	}
	improved := s.op.AtomicFold(&s.value[v], d)
	if s.op.Selective() {
		return d, improved
	}
	return d, d != 0
}

// RunSync executes the program with bulk-synchronous rounds over an
// active-vertex frontier (PowerGraph's sync engine).
func RunSync(g *graph.Graph, p *Program) []float64 {
	n := g.NumVertices()
	s := newState(p.Op, n)
	inFrontier := make([]bool, n)
	var frontier []int32
	push := func(v int32) {
		if !inFrontier[v] {
			inFrontier[v] = true
			frontier = append(frontier, v)
		}
	}
	for _, d := range p.Init {
		s.op.AtomicFold(&s.delta[d.V], d.Val)
		push(d.V)
	}
	for round := 0; len(frontier) > 0 && round < p.maxRounds(); round++ {
		cur := frontier
		frontier = nil
		for _, v := range cur {
			inFrontier[v] = false
		}
		roundChange := 0.0
		var next []int32
		nextSet := make([]bool, n)
		for _, v := range cur {
			d, improved := s.apply(v)
			if !improved {
				continue
			}
			roundChange += math.Abs(d)
			p.Scatter(g, v, d, func(dst int32, val float64) {
				if s.op.AtomicFold(&s.delta[dst], val) && !nextSet[dst] {
					nextSet[dst] = true
					next = append(next, dst)
				}
			})
		}
		frontier = next
		for _, v := range next {
			inFrontier[v] = true
		}
		if p.Epsilon > 0 && roundChange < p.Epsilon {
			break
		}
	}
	return s.values()
}

// RunAsync executes the program with a pool of workers sharing the state
// through atomics, PowerGraph's async engine / Maiter's execution model.
func RunAsync(g *graph.Graph, p *Program, workers int) []float64 {
	if workers <= 0 {
		workers = 4
	}
	n := g.NumVertices()
	s := newState(p.Op, n)
	for _, d := range p.Init {
		s.op.AtomicFold(&s.delta[d.V], d.Val)
	}
	var windowChange uint64 // accumulated |change| bits, CAS-folded
	agg.Store(&windowChange, 0)
	var stop int32
	var idleCount int32
	var resumeEpoch int64
	var passes int64 // completed worker passes, so the ε check cannot
	// mistake a scheduler stall for convergence

	rangeClean := func(w int) bool {
		id := s.op.Identity()
		for v := int32(w); v < int32(n); v += int32(workers) {
			if agg.Load(&s.delta[v]) != id {
				return false
			}
		}
		return true
	}
	allClean := func() bool {
		id := s.op.Identity()
		for v := 0; v < n; v++ {
			if agg.Load(&s.delta[v]) != id {
				return false
			}
		}
		return true
	}

	// Quiescence protocol: an idle worker parks, watching only its own
	// range; a resuming worker bumps the epoch. The quiescence detector
	// below declares global termination only when every worker is idle,
	// the whole delta array is clean, and no resume happened during the
	// scan — while all workers are idle nothing can scatter, so a clean
	// scan bracketed by (idleCount == workers, unchanged epoch) is final.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for atomic.LoadInt32(&stop) == 0 {
				progressed := false
				for v := int32(w); v < int32(n); v += int32(workers) {
					d, improved := s.apply(v)
					if !improved {
						continue
					}
					progressed = true
					addFloat(&windowChange, math.Abs(d))
					p.Scatter(g, v, d, func(dst int32, val float64) {
						s.op.AtomicFold(&s.delta[dst], val)
					})
				}
				atomic.AddInt64(&passes, 1)
				if progressed {
					continue
				}
				atomic.AddInt32(&idleCount, 1)
				for atomic.LoadInt32(&stop) == 0 {
					if !rangeClean(w) {
						atomic.AddInt64(&resumeEpoch, 1)
						atomic.AddInt32(&idleCount, -1)
						break
					}
					runtime.Gosched()
				}
			}
		}(w)
	}
	// Quiescence detector.
	detectorDone := make(chan struct{})
	go func() {
		defer close(detectorDone)
		for atomic.LoadInt32(&stop) == 0 {
			if atomic.LoadInt32(&idleCount) == int32(workers) {
				e := atomic.LoadInt64(&resumeEpoch)
				if allClean() &&
					atomic.LoadInt64(&resumeEpoch) == e &&
					atomic.LoadInt32(&idleCount) == int32(workers) {
					atomic.StoreInt32(&stop, 1)
					return
				}
			}
			runtime.Gosched()
		}
	}()
	// ε coordinator: stop when the change accumulated per interval falls
	// below ε (limit programs never strictly quiesce on their own).
	if p.Epsilon > 0 {
		go func() {
			prev, prevPasses := -1.0, int64(0)
			for i := 0; i < p.maxRounds(); i++ {
				if atomic.LoadInt32(&stop) == 1 {
					return
				}
				cur := agg.Load(&windowChange)
				curPasses := atomic.LoadInt64(&passes)
				// Require every worker to have completed at least one full
				// pass in the window before judging the change against ε.
				if prev >= 0 && curPasses-prevPasses >= int64(workers) && cur-prev < p.Epsilon {
					atomic.StoreInt32(&stop, 1)
					return
				}
				if curPasses-prevPasses >= int64(workers) || prev < 0 {
					prev, prevPasses = cur, curPasses
				}
				time.Sleep(500 * time.Microsecond)
			}
			atomic.StoreInt32(&stop, 1)
		}()
	}
	wg.Wait()
	atomic.StoreInt32(&stop, 1)
	<-detectorDone
	return s.values()
}

// addFloat CAS-accumulates a float64 into a bits cell.
func addFloat(cell *uint64, v float64) {
	for {
		old := atomic.LoadUint64(cell)
		next := math.Float64frombits(old) + v
		if atomic.CompareAndSwapUint64(cell, old, math.Float64bits(next)) {
			return
		}
	}
}

// RunPrioritized executes the program with a max-|delta| priority queue —
// the PrIter/Maiter/Prom scheduling insight that large deltas matter most
// for convergence. Sequential; the priority effect, not parallelism, is
// what the Figure-10 comparison exercises.
func RunPrioritized(g *graph.Graph, p *Program) []float64 {
	n := g.NumVertices()
	s := newState(p.Op, n)
	pq := &deltaHeap{}
	inQueue := make([]bool, n)
	push := func(v int32) {
		if !inQueue[v] {
			inQueue[v] = true
			heap.Push(pq, prioVertex{v, math.Abs(agg.Load(&s.delta[v]))})
		}
	}
	for _, d := range p.Init {
		s.op.AtomicFold(&s.delta[d.V], d.Val)
		push(d.V)
	}
	totalSinceCheck := 0.0
	steps := 0
	checkEvery := n + 1
	for pq.Len() > 0 {
		pv := heap.Pop(pq).(prioVertex)
		inQueue[pv.v] = false
		d, improved := s.apply(pv.v)
		if !improved {
			continue
		}
		totalSinceCheck += math.Abs(d)
		p.Scatter(g, pv.v, d, func(dst int32, val float64) {
			if s.op.AtomicFold(&s.delta[dst], val) {
				push(dst)
			}
		})
		steps++
		if steps%checkEvery == 0 {
			if p.Epsilon > 0 && totalSinceCheck < p.Epsilon {
				break
			}
			totalSinceCheck = 0
			if steps/checkEvery > p.maxRounds() {
				break
			}
		}
	}
	return s.values()
}

type prioVertex struct {
	v    int32
	prio float64
}

type deltaHeap []prioVertex

func (h deltaHeap) Len() int            { return len(h) }
func (h deltaHeap) Less(i, j int) bool  { return h[i].prio > h[j].prio }
func (h deltaHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deltaHeap) Push(x interface{}) { *h = append(*h, x.(prioVertex)) }
func (h *deltaHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
