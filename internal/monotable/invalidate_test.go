package monotable

import (
	"testing"

	"powerlog/internal/agg"
)

func invalidateTables() map[string]Table {
	op := agg.ByKind(agg.Min)
	return map[string]Table{
		"dense":  NewDense(op, 16, 1, 0),
		"sparse": NewSparse(op),
	}
}

func TestInvalidateErasesRow(t *testing.T) {
	for name, tab := range invalidateTables() {
		id := tab.Op().Identity()
		tab.FoldDelta(3, 7) // pending intermediate
		if v, ok := tab.Drain(3); !ok || v != 7 {
			t.Fatalf("%s: drain = %v,%v", name, v, ok)
		}
		tab.FoldAcc(3, 7)
		tab.FoldDelta(3, 9) // a second, worse pending delta
		tab.Invalidate(3)
		if got := tab.Acc(3); got != id {
			t.Errorf("%s: acc after Invalidate = %v, want identity", name, got)
		}
		if _, ok := tab.Drain(3); ok {
			t.Errorf("%s: intermediate survived Invalidate", name)
		}
		if tab.Len() != 0 {
			t.Errorf("%s: Len = %d after Invalidate, want 0", name, tab.Len())
		}
		// The key must re-derive from scratch afterwards: a worse value
		// than the erased one now sticks.
		tab.FoldDelta(3, 100)
		if v, ok := tab.Drain(3); !ok || v != 100 {
			t.Errorf("%s: re-derivation after Invalidate failed (%v,%v)", name, v, ok)
		}
		tab.FoldAcc(3, 100)
		if got := tab.Acc(3); got != 100 {
			t.Errorf("%s: acc after re-fold = %v, want 100", name, got)
		}
	}
}

func TestInvalidateLeavesOtherRows(t *testing.T) {
	for name, tab := range invalidateTables() {
		tab.FoldDelta(2, 5)
		tab.Drain(2)
		tab.FoldAcc(2, 5)
		tab.FoldDelta(4, 6)
		tab.Drain(4)
		tab.FoldAcc(4, 6)
		tab.Invalidate(2)
		if got := tab.Acc(4); got != 6 {
			t.Errorf("%s: neighbour row clobbered: acc(4) = %v", name, got)
		}
		rows := 0
		tab.RangeRows(func(k int64, acc, inter float64) bool {
			rows++
			if k != 4 {
				t.Errorf("%s: unexpected surviving row %d", name, k)
			}
			return true
		})
		if rows != 1 {
			t.Errorf("%s: surviving rows = %d, want 1", name, rows)
		}
	}
}
