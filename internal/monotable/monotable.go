// Package monotable implements the MonoTable of paper §5.2 (Figure 7):
// the distributed mutable in-memory table holding the state of a
// recursive computation. Each row has an Accumulation entry (the result
// x, folded monotonically) and an Intermediate entry (the aggregated
// delta g(Δx)). Updates follow the paper's three-step protocol:
//
//  1. atomically exchange the Intermediate with the aggregate identity
//     into a local tmp (so a delta is never aggregated twice),
//  2. fold tmp into the Accumulation at the same row,
//  3. apply f to tmp and atomically aggregate the results into the
//     Intermediate entries of dependent rows (possibly on other workers).
//
// Steps 1–2 are Drain+FoldAcc; step 3 is FoldDelta (via message passing
// for remote rows). Auxiliaries (per-vertex attribute columns) live in
// the compiled plan, not in the table.
//
// Two shard layouts are provided: a dense array shard for vertex-keyed
// programs (key space [0,n) striped across workers) and a sparse map
// shard for pair-keyed programs such as APSP and SimRank.
package monotable

import (
	"sync"

	"powerlog/internal/agg"
)

// Table is one worker's shard of the MonoTable.
type Table interface {
	// Op returns the aggregate the table folds with.
	Op() *agg.Op

	// FoldDelta aggregates v into the Intermediate entry of key (protocol
	// step 3 at the receiving row). It reports whether the entry changed
	// and marks the row dirty when it did.
	FoldDelta(key int64, v float64) bool

	// Drain atomically exchanges key's Intermediate with the identity and
	// returns the previous value (protocol steps 1–2 fetch); ok is false
	// when the entry already held the identity.
	Drain(key int64) (v float64, ok bool)

	// Acc returns the Accumulation entry of key (identity if untouched).
	Acc(key int64) float64

	// FoldAcc folds v into key's Accumulation. It reports whether the
	// entry improved, the magnitude of the change (an identity→v jump
	// improves with magnitude |v|, so a shortest-path source at distance
	// 0 still counts as an improvement), and the signed delta the fold
	// contributed to the shard's Σacc over non-identity rows (a row born
	// from the identity contributes its full new value). The signed
	// delta lets callers maintain a running accumulation sum instead of
	// re-scanning the shard (§5.4's termination check made O(1)).
	FoldAcc(key int64, v float64) (improved bool, change, accDelta float64)

	// ScanDirty drains the dirty set, invoking f for each dirty key. Keys
	// made dirty again during the scan are observed by a later scan.
	ScanDirty(f func(key int64))

	// Subshards reports how many disjoint scan ranges the shard supports
	// for a caller that wants up to `want` of them (intra-worker
	// parallelism). The result is in [1, want]; ranges are cache-line
	// granular for Dense and stripe granular for Sparse, so a small shard
	// may support fewer ranges than asked for.
	Subshards(want int) int

	// ScanDirtyRange drains the dirty keys of subshard sub of nsub,
	// invoking f for each. The nsub subshards partition the shard: over a
	// fixed nsub every dirty key belongs to exactly one subshard, and
	// ScanDirtyRange(0, 1) is ScanDirty. Scans of DISTINCT subshards may
	// run concurrently (the dirty tracking is per-subshard words for
	// Dense, per-stripe sets for Sparse — no shared cache lines); the
	// same subshard must not be scanned by two goroutines at once.
	ScanDirtyRange(sub, nsub int, f func(key int64))

	// DirtyApprox estimates the size of the dirty set without draining
	// it — a scheduling hint (is a parallel pass worth its fan-out?), not
	// a linearizable count: concurrent folds may be missed or double
	// counted.
	DirtyApprox() int

	// HasDirty reports whether any row is marked dirty.
	HasDirty() bool

	// Range iterates all rows with a non-identity Accumulation.
	Range(f func(key int64, acc float64) bool)

	// RangeRows iterates all rows where the Accumulation or the
	// Intermediate is non-identity — the state a checkpoint must capture.
	RangeRows(f func(key int64, acc, inter float64) bool)

	// SetAcc overwrites key's Accumulation (checkpoint restore only; it
	// bypasses the monotone fold).
	SetAcc(key int64, v float64)

	// Invalidate erases key's row — Accumulation AND Intermediate back to
	// the identity — so a delete-invalidation pass can force the key to
	// re-derive from surviving inputs. Like SetAcc it bypasses the
	// monotone fold and must only run while the engine is quiesced;
	// callers maintaining a running Σacc must resync it afterwards.
	Invalidate(key int64)

	// Len returns the number of rows with non-identity Accumulation.
	Len() int
}

// Dense is an array-backed shard covering the global keys
// {offset + i*stride : 0 <= i < size} — PowerLog's modulo partitioning
// of a dense vertex key space across `stride` workers.
type Dense struct {
	op             *agg.Op
	stride, offset int64
	acc            []uint64
	inter          []uint64
	dirty          []uint32 // atomic bitmap over local slots
}

// NewDense creates a dense shard for worker `offset` of `stride` workers
// over the global key space [0, n).
func NewDense(op *agg.Op, n int, stride, offset int64) *Dense {
	if stride <= 0 || offset < 0 || offset >= stride {
		panic("monotable: bad stride/offset")
	}
	size := int((int64(n) - offset + stride - 1) / stride)
	if size < 0 {
		size = 0
	}
	d := &Dense{
		op:     op,
		stride: stride,
		offset: offset,
		acc:    make([]uint64, size),
		inter:  make([]uint64, size),
		dirty:  make([]uint32, (size+31)/32),
	}
	for i := range d.acc {
		agg.Store(&d.acc[i], op.Identity())
		agg.Store(&d.inter[i], op.Identity())
	}
	return d
}

func (d *Dense) slot(key int64) int { return int((key - d.offset) / d.stride) }

// globalKey maps a local slot back to its global key.
func (d *Dense) globalKey(slot int) int64 { return d.offset + int64(slot)*d.stride }

// Op implements Table.
func (d *Dense) Op() *agg.Op { return d.op }

// FoldDelta implements Table.
func (d *Dense) FoldDelta(key int64, v float64) bool {
	s := d.slot(key)
	if !d.op.AtomicFold(&d.inter[s], v) {
		return false
	}
	markDirty(d.dirty, s)
	return true
}

// Drain implements Table.
func (d *Dense) Drain(key int64) (float64, bool) {
	s := d.slot(key)
	v := d.op.AtomicExchangeIdentity(&d.inter[s])
	if v == d.op.Identity() {
		return v, false
	}
	return v, true
}

// Acc implements Table.
func (d *Dense) Acc(key int64) float64 { return agg.Load(&d.acc[d.slot(key)]) }

// FoldAcc implements Table.
func (d *Dense) FoldAcc(key int64, v float64) (bool, float64, float64) {
	return foldAccCell(d.op, &d.acc[d.slot(key)], v)
}

// dirtyWordsPerLine groups the dirty bitmap into 64-byte cache lines
// (16 × uint32 = 512 slots). Subshard boundaries fall only on line
// boundaries, so two goroutines scanning different subshards never CAS
// or swap words on the same cache line — the mark-dirty bitmap stays
// per-subshard and ping-pong free.
const dirtyWordsPerLine = 16

// dirtyLines is the number of cache-line groups in the bitmap.
func (d *Dense) dirtyLines() int {
	return (len(d.dirty) + dirtyWordsPerLine - 1) / dirtyWordsPerLine
}

// scanWords drains the dirty words in [lo, hi), invoking f per set bit.
func (d *Dense) scanWords(lo, hi int, f func(key int64)) {
	for w := lo; w < hi; w++ {
		bits := swapWord(&d.dirty[w], 0)
		for bits != 0 {
			b := bits & (-bits)
			bit := trailingZeros32(bits)
			bits ^= b
			slot := w*32 + bit
			if slot < len(d.acc) {
				f(d.globalKey(slot))
			}
		}
	}
}

// ScanDirty implements Table.
func (d *Dense) ScanDirty(f func(key int64)) { d.scanWords(0, len(d.dirty), f) }

// Subshards implements Table: at most one subshard per bitmap cache
// line, so disjoint ranges never share a dirty word's line.
func (d *Dense) Subshards(want int) int {
	lines := d.dirtyLines()
	if lines < 1 {
		lines = 1
	}
	if want < 1 {
		want = 1
	}
	if want > lines {
		return lines
	}
	return want
}

// ScanDirtyRange implements Table: subshard sub of nsub covers the
// cache-line block [sub·L/nsub, (sub+1)·L/nsub) of the dirty bitmap —
// contiguous slot ranges, scanned in ascending slot order.
func (d *Dense) ScanDirtyRange(sub, nsub int, f func(key int64)) {
	lines := d.dirtyLines()
	lo := sub * lines / nsub * dirtyWordsPerLine
	hi := (sub + 1) * lines / nsub * dirtyWordsPerLine
	if hi > len(d.dirty) {
		hi = len(d.dirty)
	}
	d.scanWords(lo, hi, f)
}

// DirtyApprox implements Table: a popcount sweep of the bitmap.
func (d *Dense) DirtyApprox() int {
	n := 0
	for w := range d.dirty {
		n += onesCount32(loadWord(&d.dirty[w]))
	}
	return n
}

// HasDirty implements Table.
func (d *Dense) HasDirty() bool {
	for w := range d.dirty {
		if loadWord(&d.dirty[w]) != 0 {
			return true
		}
	}
	return false
}

// Range implements Table.
func (d *Dense) Range(f func(key int64, acc float64) bool) {
	id := d.op.Identity()
	for s := range d.acc {
		v := agg.Load(&d.acc[s])
		if v == id {
			continue
		}
		if !f(d.globalKey(s), v) {
			return
		}
	}
}

// RangeRows implements Table.
func (d *Dense) RangeRows(f func(key int64, acc, inter float64) bool) {
	id := d.op.Identity()
	for s := range d.acc {
		a := agg.Load(&d.acc[s])
		i := agg.Load(&d.inter[s])
		if a == id && i == id {
			continue
		}
		if !f(d.globalKey(s), a, i) {
			return
		}
	}
}

// SetAcc implements Table.
func (d *Dense) SetAcc(key int64, v float64) {
	agg.Store(&d.acc[d.slot(key)], v)
}

// Invalidate implements Table. The dirty bit (if set) is left alone: a
// later scan drains an identity Intermediate and skips the key.
func (d *Dense) Invalidate(key int64) {
	s := d.slot(key)
	agg.Store(&d.acc[s], d.op.Identity())
	agg.Store(&d.inter[s], d.op.Identity())
}

// Len implements Table.
func (d *Dense) Len() int {
	id := d.op.Identity()
	n := 0
	for s := range d.acc {
		if agg.Load(&d.acc[s]) != id {
			n++
		}
	}
	return n
}

// sparseStripes is the fixed stripe count of the sparse layout: a power
// of two so stripe selection is a mask, and comfortably above the
// per-worker core cap (8) so any Subshards(want) request partitions
// stripes evenly enough to balance.
const sparseStripes = 32

// Sparse is a map-backed shard for pair-keyed programs, hash-striped so
// range scans and folds on different stripes never contend. Each stripe
// serialises its maps with a mutex; the per-row entries still use the
// atomic protocol so Drain and FoldDelta interleave correctly with
// readers once a row pointer is in hand.
type Sparse struct {
	op      *agg.Op
	stripes [sparseStripes]sparseStripe
}

type sparseStripe struct {
	mu      sync.Mutex
	rows    map[int64]*sparseRow
	dirty   map[int64]struct{}
	scratch []int64 // reused ScanDirty drain target (one scanner per stripe)

	// Pad stripes apart so one stripe's mutex traffic does not
	// false-share with its neighbour's.
	_ [64]byte
}

type sparseRow struct {
	acc, inter uint64
}

// NewSparse creates an empty sparse shard.
func NewSparse(op *agg.Op) *Sparse {
	s := &Sparse{op: op}
	for i := range s.stripes {
		s.stripes[i].rows = map[int64]*sparseRow{}
		s.stripes[i].dirty = map[int64]struct{}{}
	}
	return s
}

// stripeOf hashes a key to its stripe (Fibonacci mix, like the runtime's
// combiner hash, so src<<32|dst pair keys spread).
func (s *Sparse) stripeOf(key int64) *sparseStripe {
	x := uint64(key) * 0x9E3779B97F4A7C15
	return &s.stripes[(x^(x>>32))&(sparseStripes-1)]
}

// Op implements Table.
func (s *Sparse) Op() *agg.Op { return s.op }

// row returns (creating if needed) the row for key. Caller holds st.mu.
func (st *sparseStripe) row(key int64, op *agg.Op) *sparseRow {
	r, ok := st.rows[key]
	if !ok {
		r = &sparseRow{}
		agg.Store(&r.acc, op.Identity())
		agg.Store(&r.inter, op.Identity())
		st.rows[key] = r
	}
	return r
}

// FoldDelta implements Table.
func (s *Sparse) FoldDelta(key int64, v float64) bool {
	st := s.stripeOf(key)
	st.mu.Lock()
	r := st.row(key, s.op)
	changed := s.op.AtomicFold(&r.inter, v)
	if changed {
		st.dirty[key] = struct{}{}
	}
	st.mu.Unlock()
	return changed
}

// Drain implements Table.
func (s *Sparse) Drain(key int64) (float64, bool) {
	st := s.stripeOf(key)
	st.mu.Lock()
	r := st.row(key, s.op)
	st.mu.Unlock()
	v := s.op.AtomicExchangeIdentity(&r.inter)
	if v == s.op.Identity() {
		return v, false
	}
	return v, true
}

// Acc implements Table.
func (s *Sparse) Acc(key int64) float64 {
	st := s.stripeOf(key)
	st.mu.Lock()
	r, ok := st.rows[key]
	st.mu.Unlock()
	if !ok {
		return s.op.Identity()
	}
	return agg.Load(&r.acc)
}

// FoldAcc implements Table.
func (s *Sparse) FoldAcc(key int64, v float64) (bool, float64, float64) {
	st := s.stripeOf(key)
	st.mu.Lock()
	r := st.row(key, s.op)
	st.mu.Unlock()
	return foldAccCell(s.op, &r.acc, v)
}

// scanDirtyStripe drains one stripe's dirty set into its reused scratch
// (deleting in place keeps the map's buckets, so a steady-state scan
// allocates nothing), then invokes f outside the lock.
func (s *Sparse) scanDirtyStripe(st *sparseStripe, f func(key int64)) {
	st.mu.Lock()
	keys := st.scratch[:0]
	for k := range st.dirty {
		keys = append(keys, k)
		delete(st.dirty, k)
	}
	st.scratch = keys
	st.mu.Unlock()
	for _, k := range keys {
		f(k)
	}
}

// ScanDirty implements Table.
func (s *Sparse) ScanDirty(f func(key int64)) {
	for i := range s.stripes {
		s.scanDirtyStripe(&s.stripes[i], f)
	}
}

// Subshards implements Table: at most one subshard per stripe.
func (s *Sparse) Subshards(want int) int {
	if want < 1 {
		return 1
	}
	if want > sparseStripes {
		return sparseStripes
	}
	return want
}

// ScanDirtyRange implements Table: subshard sub of nsub covers the
// stripe block [sub·S/nsub, (sub+1)·S/nsub).
func (s *Sparse) ScanDirtyRange(sub, nsub int, f func(key int64)) {
	lo := sub * sparseStripes / nsub
	hi := (sub + 1) * sparseStripes / nsub
	for i := lo; i < hi; i++ {
		s.scanDirtyStripe(&s.stripes[i], f)
	}
}

// DirtyApprox implements Table.
func (s *Sparse) DirtyApprox() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += len(st.dirty)
		st.mu.Unlock()
	}
	return n
}

// HasDirty implements Table.
func (s *Sparse) HasDirty() bool {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n := len(st.dirty)
		st.mu.Unlock()
		if n != 0 {
			return true
		}
	}
	return false
}

// Range implements Table.
func (s *Sparse) Range(f func(key int64, acc float64) bool) {
	type kv struct {
		k int64
		v float64
	}
	id := s.op.Identity()
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		all := make([]kv, 0, len(st.rows))
		for k, r := range st.rows {
			if v := agg.Load(&r.acc); v != id {
				all = append(all, kv{k, v})
			}
		}
		st.mu.Unlock()
		for _, e := range all {
			if !f(e.k, e.v) {
				return
			}
		}
	}
}

// RangeRows implements Table.
func (s *Sparse) RangeRows(f func(key int64, acc, inter float64) bool) {
	type kv struct {
		k        int64
		acc, del float64
	}
	id := s.op.Identity()
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		all := make([]kv, 0, len(st.rows))
		for k, r := range st.rows {
			a, d := agg.Load(&r.acc), agg.Load(&r.inter)
			if a == id && d == id {
				continue
			}
			all = append(all, kv{k, a, d})
		}
		st.mu.Unlock()
		for _, e := range all {
			if !f(e.k, e.acc, e.del) {
				return
			}
		}
	}
}

// SetAcc implements Table.
func (s *Sparse) SetAcc(key int64, v float64) {
	st := s.stripeOf(key)
	st.mu.Lock()
	r := st.row(key, s.op)
	st.mu.Unlock()
	agg.Store(&r.acc, v)
}

// Invalidate implements Table: the row and its dirty entry are removed
// outright, so the key re-derives (or stays absent) from scratch.
func (s *Sparse) Invalidate(key int64) {
	st := s.stripeOf(key)
	st.mu.Lock()
	delete(st.rows, key)
	delete(st.dirty, key)
	st.mu.Unlock()
}

// Len implements Table.
func (s *Sparse) Len() int {
	n := 0
	s.Range(func(int64, float64) bool { n++; return true })
	return n
}

// foldAccCell folds v into an accumulation cell, reporting improvement,
// |change|, and the signed Σacc contribution (identity counts as 0, so a
// row leaving the identity contributes its full value).
func foldAccCell(op *agg.Op, cell *uint64, v float64) (bool, float64, float64) {
	for {
		oldBits := loadU64(cell)
		old := fromBits(oldBits)
		next := op.Fold(old, v)
		if next == old {
			return false, 0, 0
		}
		if casU64(cell, oldBits, toBits(next)) {
			signed := next - old
			if old == op.Identity() {
				signed = next
			}
			return true, magnitude(op, old, next, v), signed
		}
	}
}

// magnitude computes the ε-termination contribution of an accumulation
// change: for selective aggregates the distance moved (when finite); for
// combining aggregates the folded delta itself.
func magnitude(op *agg.Op, old, next, v float64) float64 {
	if op.Selective() {
		d := old - next
		if d < 0 {
			d = -d
		}
		if d != d || d > 1e300 { // NaN or from-identity jump: count the value move
			return agg.Abs(v)
		}
		return d
	}
	return agg.Abs(v)
}
