package monotable

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Thin wrappers keeping the main file free of bit-twiddling noise.

func loadU64(p *uint64) uint64            { return atomic.LoadUint64(p) }
func casU64(p *uint64, o, n uint64) bool  { return atomic.CompareAndSwapUint64(p, o, n) }
func toBits(f float64) uint64             { return math.Float64bits(f) }
func fromBits(b uint64) float64           { return math.Float64frombits(b) }
func swapWord(p *uint32, v uint32) uint32 { return atomic.SwapUint32(p, v) }
func loadWord(p *uint32) uint32           { return atomic.LoadUint32(p) }
func trailingZeros32(v uint32) int        { return bits.TrailingZeros32(v) }
func onesCount32(v uint32) int            { return bits.OnesCount32(v) }

func markDirty(dirty []uint32, slot int) {
	w, b := slot/32, uint32(1)<<(slot%32)
	for {
		old := atomic.LoadUint32(&dirty[w])
		if old&b != 0 {
			return
		}
		if atomic.CompareAndSwapUint32(&dirty[w], old, old|b) {
			return
		}
	}
}
