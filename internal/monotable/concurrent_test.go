package monotable

import (
	"sync"
	"testing"

	"powerlog/internal/agg"
)

// These tests pin the subshard contract ScanDirtyRange adds for
// intra-worker parallelism (DESIGN.md §9): over a fixed nsub the
// subshards partition the dirty set exactly, distinct subshards may be
// scanned concurrently with folds racing in, and the Dense range-scan
// hot path stays allocation-free.

// dirtyKeys marks every key in ks dirty by folding v and returns the
// expected set. Callers re-dirtying the same keys must pass a strictly
// better v each time: a fold that doesn't change the intermediate (a
// repeated Min value, say) doesn't re-mark the row.
func dirtyKeys(tb Table, ks []int64, v float64) map[int64]bool {
	want := make(map[int64]bool, len(ks))
	for _, k := range ks {
		tb.FoldDelta(k, v)
		want[k] = true
	}
	return want
}

func collectRange(tb Table, sub, nsub int) []int64 {
	var got []int64
	tb.ScanDirtyRange(sub, nsub, func(k int64) { got = append(got, k) })
	return got
}

// TestScanDirtyRangePartition: for several nsub values, the union of
// all subshard scans is exactly the dirty set with no key seen twice,
// on both layouts and on a strided Dense shard.
func TestScanDirtyRangePartition(t *testing.T) {
	// Key choices: every 3rd owned key for dense (honouring stride and
	// offset for the strided shard), arbitrary spread-out keys for sparse.
	var denseKeys, stridedKeys, sparseKeys []int64
	for i := int64(0); i < 4000; i += 3 {
		denseKeys = append(denseKeys, i)
	}
	for i := int64(1); i < 4000; i += 4 * 3 {
		stridedKeys = append(stridedKeys, i)
	}
	for i := int64(0); i < 2000; i++ {
		sparseKeys = append(sparseKeys, i*2654435761%100000)
	}
	cases := []struct {
		name string
		make func() Table
		keys []int64
	}{
		{"dense", func() Table { return NewDense(agg.ByKind(agg.Sum), 4000, 1, 0) }, denseKeys},
		{"dense-strided", func() Table { return NewDense(agg.ByKind(agg.Sum), 4000, 4, 1) }, stridedKeys},
		{"sparse", func() Table { return NewSparse(agg.ByKind(agg.Min)) }, sparseKeys},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := tc.make()
			for round, want := range []int{1, 2, 3, 5, 8, 64} {
				expect := dirtyKeys(tb, tc.keys, float64(100-round))
				nsub := tb.Subshards(want)
				if nsub < 1 || nsub > want {
					t.Fatalf("Subshards(%d) = %d, outside [1, %d]", want, nsub, want)
				}
				seen := make(map[int64]int)
				for sub := 0; sub < nsub; sub++ {
					for _, k := range collectRange(tb, sub, nsub) {
						seen[k]++
					}
				}
				for k, n := range seen {
					if n != 1 {
						t.Fatalf("nsub=%d: key %d scanned %d times", nsub, k, n)
					}
					if !expect[k] {
						t.Fatalf("nsub=%d: key %d scanned but never dirtied", nsub, k)
					}
				}
				if len(seen) != len(expect) {
					t.Fatalf("nsub=%d: scanned %d keys, want %d", nsub, len(seen), len(expect))
				}
				if tb.HasDirty() {
					t.Fatalf("nsub=%d: dirty keys left after scanning every subshard", nsub)
				}
			}
		})
	}
}

// TestScanDirtyRangeDegenerate: ScanDirtyRange(0, 1) is ScanDirty.
func TestScanDirtyRangeDegenerate(t *testing.T) {
	for _, tb := range []Table{NewDense(agg.ByKind(agg.Sum), 100, 1, 0), NewSparse(agg.ByKind(agg.Sum))} {
		want := dirtyKeys(tb, []int64{1, 7, 42, 99}, 1)
		got := collectRange(tb, 0, 1)
		if len(got) != len(want) {
			t.Fatalf("ScanDirtyRange(0,1) saw %d keys, want %d", len(got), len(want))
		}
		for _, k := range got {
			if !want[k] {
				t.Fatalf("ScanDirtyRange(0,1) saw unexpected key %d", k)
			}
		}
	}
}

func TestDirtyApprox(t *testing.T) {
	for name, tb := range map[string]Table{
		"dense":  NewDense(agg.ByKind(agg.Sum), 1000, 1, 0),
		"sparse": NewSparse(agg.ByKind(agg.Sum)),
	} {
		if got := tb.DirtyApprox(); got != 0 {
			t.Fatalf("%s: DirtyApprox on empty table = %d", name, got)
		}
		for i := int64(0); i < 300; i++ {
			tb.FoldDelta(i, 1)
		}
		// Quiescent, so the estimate is exact.
		if got := tb.DirtyApprox(); got != 300 {
			t.Fatalf("%s: DirtyApprox = %d, want 300", name, got)
		}
		tb.ScanDirty(func(k int64) { tb.Drain(k) })
		if got := tb.DirtyApprox(); got != 0 {
			t.Fatalf("%s: DirtyApprox after drain = %d", name, got)
		}
	}
}

// TestConcurrentFoldScanRange is the -race hammer: writers FoldDelta
// into the table while scanner goroutines drain disjoint subshards and
// fold into accumulations, with a reader polling Acc and DirtyApprox.
// For a sum aggregate every folded unit must survive somewhere:
// Σacc + Σinter == total folds at quiescence.
func TestConcurrentFoldScanRange(t *testing.T) {
	const (
		writers = 4
		nkeys   = 2048
	)
	perW := 20000
	if testing.Short() {
		perW = 4000
	}
	for name, tb := range map[string]Table{
		"dense":  NewDense(agg.ByKind(agg.Sum), nkeys, 1, 0),
		"sparse": NewSparse(agg.ByKind(agg.Sum)),
	} {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			done := make(chan struct{})
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						k := int64((g*2654435761 + i*7919) % nkeys)
						tb.FoldDelta(k, 1)
					}
				}(g)
			}

			nsub := tb.Subshards(4)
			var scanners sync.WaitGroup
			for sub := 0; sub < nsub; sub++ {
				scanners.Add(1)
				go func(sub int) {
					defer scanners.Done()
					scan := func() {
						tb.ScanDirtyRange(sub, nsub, func(k int64) {
							if v, ok := tb.Drain(k); ok {
								tb.FoldAcc(k, v)
							}
						})
					}
					for {
						select {
						case <-done:
							scan() // final sweep after writers stop
							return
						default:
							scan()
						}
					}
				}(sub)
			}

			// Concurrent readers: Acc and DirtyApprox must be safe against
			// racing folds and scans.
			var readers sync.WaitGroup
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-done:
						return
					default:
						for k := int64(0); k < nkeys; k += 37 {
							tb.Acc(k)
						}
						tb.DirtyApprox()
					}
				}
			}()

			wg.Wait()
			close(done)
			scanners.Wait()
			readers.Wait()

			// Mop up rows whose dirty mark raced past the final sweeps,
			// then check conservation.
			tb.ScanDirty(func(k int64) {
				if v, ok := tb.Drain(k); ok {
					tb.FoldAcc(k, v)
				}
			})
			total := 0.0
			tb.RangeRows(func(_ int64, acc, inter float64) bool {
				total += acc + inter
				return true
			})
			if want := float64(writers * perW); total != want {
				t.Fatalf("conservation: Σacc+Σinter = %v, want %v", total, want)
			}
		})
	}
}

// TestDenseScanRangeAllocFree pins the per-core scan hot path: a
// steady-state FoldDelta + ScanDirtyRange cycle over every subshard of
// a Dense shard allocates nothing.
func TestDenseScanRangeAllocFree(t *testing.T) {
	d := NewDense(agg.ByKind(agg.Sum), 4096, 1, 0)
	nsub := d.Subshards(8)
	if nsub < 2 {
		t.Fatalf("Subshards(8) = %d on a 4096-slot shard, want >= 2", nsub)
	}
	sink := int64(0)
	scanFn := func(k int64) { sink += k }
	body := func() {
		for k := int64(0); k < 4096; k += 5 {
			d.FoldDelta(k, 1)
		}
		for sub := 0; sub < nsub; sub++ {
			d.ScanDirtyRange(sub, nsub, scanFn)
		}
	}
	body() // warm
	if allocs := testing.AllocsPerRun(10, body); allocs != 0 {
		t.Fatalf("Dense FoldDelta+ScanDirtyRange cycle allocates %v/run, want 0", allocs)
	}
	_ = sink
}

// TestSubshardsStability: the subshard count for a given want is stable
// (the pass deal depends on it) and ranges for different nsub values
// still partition — no stale-nsub aliasing.
func TestSubshardsStability(t *testing.T) {
	d := NewDense(agg.ByKind(agg.Sum), 100000, 1, 0)
	for _, want := range []int{1, 2, 4, 16, 32} {
		a, b := d.Subshards(want), d.Subshards(want)
		if a != b {
			t.Fatalf("Subshards(%d) unstable: %d then %d", want, a, b)
		}
	}
	s := NewSparse(agg.ByKind(agg.Sum))
	if got := s.Subshards(1 << 20); got > sparseStripes {
		t.Fatalf("sparse Subshards(1<<20) = %d, want <= %d stripes", got, sparseStripes)
	}
}
