package monotable

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"powerlog/internal/agg"
)

func tables(op *agg.Op, n int) map[string]Table {
	return map[string]Table{
		"dense":  NewDense(op, n, 1, 0),
		"sparse": NewSparse(op),
	}
}

func TestFoldDrainCycle(t *testing.T) {
	for name, tb := range tables(agg.ByKind(agg.Sum), 10) {
		t.Run(name, func(t *testing.T) {
			if _, ok := tb.Drain(3); ok {
				t.Error("fresh row should drain nothing")
			}
			if !tb.FoldDelta(3, 2.5) {
				t.Error("first fold should change the row")
			}
			if !tb.FoldDelta(3, 1.5) {
				t.Error("second fold should change the row")
			}
			v, ok := tb.Drain(3)
			if !ok || v != 4 {
				t.Errorf("drain = %v,%v", v, ok)
			}
			if _, ok := tb.Drain(3); ok {
				t.Error("double drain must not see the delta again")
			}
			if imp, change, signed := tb.FoldAcc(3, v); !imp || change != 4 || signed != 4 {
				t.Errorf("acc change = %v,%v,%v", imp, change, signed)
			}
			if got := tb.Acc(3); got != 4 {
				t.Errorf("acc = %v", got)
			}
		})
	}
}

func TestMinSemantics(t *testing.T) {
	for name, tb := range tables(agg.ByKind(agg.Min), 10) {
		t.Run(name, func(t *testing.T) {
			tb.FoldDelta(1, 7)
			tb.FoldDelta(1, 3)
			tb.FoldDelta(1, 5)
			v, ok := tb.Drain(1)
			if !ok || v != 3 {
				t.Fatalf("drain = %v", v)
			}
			if imp, _, signed := tb.FoldAcc(1, 3); !imp || signed != 3 {
				t.Errorf("first acc fold should improve with Σacc delta 3, got %v,%v", imp, signed)
			}
			if imp, c, signed := tb.FoldAcc(1, 9); imp || c != 0 || signed != 0 {
				t.Error("worse value should not improve acc")
			}
			if _, c, signed := tb.FoldAcc(1, 1); c != 2 || signed != -2 {
				t.Errorf("improvement magnitude = %v (Σacc delta %v), want 2, -2", c, signed)
			}
			if tb.Acc(1) != 1 {
				t.Errorf("acc = %v", tb.Acc(1))
			}
		})
	}
}

func TestDirtyTracking(t *testing.T) {
	for name, tb := range tables(agg.ByKind(agg.Sum), 100) {
		t.Run(name, func(t *testing.T) {
			if tb.HasDirty() {
				t.Error("fresh table dirty")
			}
			tb.FoldDelta(10, 1)
			tb.FoldDelta(42, 1)
			tb.FoldDelta(10, 1) // same key twice: one dirty entry
			if !tb.HasDirty() {
				t.Error("should be dirty")
			}
			seen := map[int64]int{}
			tb.ScanDirty(func(k int64) { seen[k]++ })
			if len(seen) != 2 || seen[10] != 1 || seen[42] != 1 {
				t.Errorf("dirty keys = %v", seen)
			}
			if tb.HasDirty() {
				t.Error("scan should clear dirty set")
			}
		})
	}
}

func TestRangeAndLen(t *testing.T) {
	for name, tb := range tables(agg.ByKind(agg.Min), 50) {
		t.Run(name, func(t *testing.T) {
			tb.FoldAcc(5, 1.5)
			tb.FoldAcc(7, 2.5)
			got := map[int64]float64{}
			tb.Range(func(k int64, v float64) bool {
				got[k] = v
				return true
			})
			if len(got) != 2 || got[5] != 1.5 || got[7] != 2.5 {
				t.Errorf("range = %v", got)
			}
			if tb.Len() != 2 {
				t.Errorf("len = %d", tb.Len())
			}
			// Early stop.
			count := 0
			tb.Range(func(int64, float64) bool { count++; return false })
			if count != 1 {
				t.Errorf("early stop visited %d", count)
			}
		})
	}
}

func TestDenseStriping(t *testing.T) {
	// 3 workers over keys [0,10): worker 1 owns 1,4,7.
	d := NewDense(agg.ByKind(agg.Sum), 10, 3, 1)
	for _, k := range []int64{1, 4, 7} {
		d.FoldDelta(k, float64(k))
	}
	var keys []int64
	d.ScanDirty(func(k int64) { keys = append(keys, k) })
	if len(keys) != 3 {
		t.Fatalf("dirty = %v", keys)
	}
	for _, k := range keys {
		if k%3 != 1 {
			t.Errorf("key %d not owned by worker 1", k)
		}
		if v, ok := d.Drain(k); !ok || v != float64(k) {
			t.Errorf("drain(%d) = %v,%v", k, v, ok)
		}
	}
}

func TestDenseEdgeSlots(t *testing.T) {
	// Last slot of the bitmap word boundary must be scannable.
	d := NewDense(agg.ByKind(agg.Sum), 64, 1, 0)
	d.FoldDelta(63, 1)
	d.FoldDelta(31, 1)
	d.FoldDelta(32, 1)
	seen := map[int64]bool{}
	d.ScanDirty(func(k int64) { seen[k] = true })
	for _, k := range []int64{31, 32, 63} {
		if !seen[k] {
			t.Errorf("key %d missed by scan", k)
		}
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad stride should panic")
		}
	}()
	NewDense(agg.ByKind(agg.Sum), 10, 0, 0)
}

// TestConcurrentProtocol runs the full three-step protocol concurrently:
// producers fold deltas, a consumer drains and accumulates. The final
// accumulated total must equal the produced total (sum) — the
// no-loss/no-duplication invariant of paper Figure 7.
func TestConcurrentProtocol(t *testing.T) {
	for name, tb := range tables(agg.ByKind(agg.Sum), 64) {
		t.Run(name, func(t *testing.T) {
			const producers = 4
			const perP = 3000
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perP; i++ {
						tb.FoldDelta(int64(i%64), 1)
					}
				}(p)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					tb.ScanDirty(func(k int64) {
						if v, ok := tb.Drain(k); ok {
							tb.FoldAcc(k, v)
						}
					})
					total := 0.0
					tb.Range(func(_ int64, v float64) bool { total += v; return true })
					if total >= producers*perP {
						return
					}
				}
			}()
			wg.Wait()
			<-done
			total := 0.0
			tb.Range(func(_ int64, v float64) bool { total += v; return true })
			if total != producers*perP {
				t.Errorf("total = %v, want %v", total, producers*perP)
			}
		})
	}
}

// TestQuickDrainNeverDuplicates: for min tables, draining after arbitrary
// fold sequences yields the minimum of the folded values exactly once.
func TestQuickDrainNeverDuplicates(t *testing.T) {
	f := func(vals []float64) bool {
		tb := NewSparse(agg.ByKind(agg.Min))
		want := math.Inf(1)
		folded := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			tb.FoldDelta(0, v)
			if v < want {
				want = v
			}
			folded = true
		}
		v, ok := tb.Drain(0)
		if !folded {
			return !ok
		}
		if !ok || v != want {
			return false
		}
		_, ok = tb.Drain(0)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickAccDeltaTracksRange: summing FoldAcc's signed deltas must
// equal a full Range scan of the accumulation column — the invariant
// that lets the runtime's termination stats drop their O(n) scan.
func TestQuickAccDeltaTracksRange(t *testing.T) {
	for _, kind := range []agg.Kind{agg.Min, agg.Max, agg.Sum} {
		op := agg.ByKind(kind)
		f := func(keys []uint8, vals []float64) bool {
			for name, tb := range tables(op, 256) {
				running := 0.0
				for i, k := range keys {
					if i >= len(vals) {
						break
					}
					v := vals[i]
					if math.IsNaN(v) || math.IsInf(v, 0) {
						continue
					}
					// The identity only holds without float overflow (at
					// ~1e308 a sum or signed difference saturates to ±Inf);
					// fold the generated magnitude back into a sane range.
					if math.Abs(v) > 1e100 {
						v = math.Mod(v, 1e100)
					}
					_, _, signed := tb.FoldAcc(int64(k), v)
					running += signed
				}
				scanned := 0.0
				tb.Range(func(_ int64, v float64) bool { scanned += v; return true })
				if math.Abs(running-scanned) > 1e-9*(1+math.Abs(scanned)) {
					t.Errorf("%s/%v: running Σacc %v, scanned %v", name, kind, running, scanned)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Error(err)
		}
	}
}

func TestMagnitudeFromIdentity(t *testing.T) {
	tb := NewDense(agg.ByKind(agg.Min), 4, 1, 0)
	// First fold from +inf: improved with magnitude |v|, not inf; the
	// Σacc contribution of a newborn row is its full value.
	if imp, c, signed := tb.FoldAcc(0, 5); !imp || c != 5 || signed != 5 {
		t.Errorf("identity-jump = %v,%v,%v", imp, c, signed)
	}
	// Identity-jump to 0 must still report improvement (SSSP source).
	if imp, c, signed := tb.FoldAcc(1, 0); !imp || c != 0 || signed != 0 {
		t.Errorf("identity-jump-to-zero = %v,%v,%v", imp, c, signed)
	}
}
