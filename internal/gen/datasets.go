package gen

import (
	"fmt"
	"sync"

	"powerlog/internal/graph"
)

// Dataset describes one synthetic stand-in for a Table-2 graph.
type Dataset struct {
	Name     string // short name used throughout the benches ("LiveJ", ...)
	Original string // the real graph it models
	OrigV    int64  // Table 2 |V|
	OrigE    int64  // Table 2 |E|
	Kind     string // generator family
	Seed     int64

	build func(weighted bool) *graph.Graph
}

// Datasets returns the six Table-2 stand-ins at roughly 1/400 scale,
// preserving the table's relative size ordering and each graph's
// character: social graphs are R-MAT power-law; ClueWeb09 has a small
// diameter (hub shortcuts); Wiki-link has a large diameter (chain
// backbone); Arabic-2005 is the largest and heavily skewed.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "Flickr", Original: "Flickr", OrigV: 2302925, OrigE: 33140017,
			Kind: "rmat", Seed: 101,
			build: func(weighted bool) *graph.Graph {
				return RMAT(13, 82000, weightOf(weighted), 101) // 8.2k, 82k
			},
		},
		{
			Name: "LiveJ", Original: "LiveJournal", OrigV: 4847571, OrigE: 68475391,
			Kind: "rmat", Seed: 102,
			build: func(weighted bool) *graph.Graph {
				return RMAT(14, 171000, weightOf(weighted), 102) // 16k, 171k
			},
		},
		{
			Name: "Orkut", Original: "Orkut", OrigV: 3072441, OrigE: 117184899,
			Kind: "rmat-dense", Seed: 103,
			build: func(weighted bool) *graph.Graph {
				return RMAT(13, 292000, weightOf(weighted), 103) // 8.2k, 292k (dense)
			},
		},
		{
			Name: "Web", Original: "ClueWeb09", OrigV: 20000000, OrigE: 243063334,
			Kind: "uniform-smalldiam", Seed: 104,
			build: func(weighted bool) *graph.Graph {
				// Uniform random with m ≈ 12·n has tiny diameter, matching
				// the paper's note that ClueWeb09's small diameter favours
				// delta-stepping-style optimisations.
				return Uniform(25000, 300000, weightOf(weighted), 104)
			},
		},
		{
			Name: "Wiki", Original: "Wiki-link", OrigV: 12150976, OrigE: 378142420,
			Kind: "chain-highdiam", Seed: 105,
			build: func(weighted bool) *graph.Graph {
				// Chain backbone + short-range skips: ~30 extra edges per
				// vertex within the next 300 positions give a diameter an
				// order of magnitude above the other datasets — the
				// deep-frontier regime of paper Figure 1b.
				return LocalChain(15000, 30, 300, weightOf(weighted), 105)
			},
		},
		{
			Name: "Arabic", Original: "Arabic-2005", OrigV: 22744080, OrigE: 639999458,
			Kind: "rmat-large", Seed: 106,
			build: func(weighted bool) *graph.Graph {
				return RMAT(15, 800000, weightOf(weighted), 106) // 33k, 800k
			},
		},
	}
}

func weightOf(weighted bool) float64 {
	if weighted {
		return 100 // SSSP-style weights in [1,100]
	}
	return 0
}

// DatasetByName returns the named Table-2 stand-in.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// graphCache memoises built graphs: the benches request the same dataset
// for every algorithm/engine combination.
var graphCache sync.Map // key string → *graph.Graph

// Build materialises the dataset's graph (cached per weighted flag).
func (d Dataset) Build(weighted bool) *graph.Graph {
	key := fmt.Sprintf("%s/%v", d.Name, weighted)
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	g := d.build(weighted)
	graphCache.Store(key, g)
	return g
}

// TinyDatasets returns small versions of each generator family for unit
// and integration tests (hundreds of vertices, deterministic).
func TinyDatasets() []Dataset {
	mk := func(name, kind string, seed int64, build func(weighted bool) *graph.Graph) Dataset {
		return Dataset{Name: name, Original: name, Kind: kind, Seed: seed, build: build}
	}
	return []Dataset{
		mk("tiny-rmat", "rmat", 7, func(w bool) *graph.Graph { return RMAT(8, 1200, weightOf(w), 7) }),
		mk("tiny-uniform", "uniform", 8, func(w bool) *graph.Graph { return Uniform(300, 1800, weightOf(w), 8) }),
		mk("tiny-chain", "chain", 9, func(w bool) *graph.Graph { return Chain(300, 600, weightOf(w), 9) }),
	}
}
