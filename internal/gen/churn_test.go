package gen

import (
	"bytes"
	"strings"
	"testing"

	"powerlog/internal/graph"
)

func TestChurnStreamReproducible(t *testing.T) {
	g := Uniform(100, 600, 10, 5)
	a, ea, err := ChurnStream(g, "mixed", 0.01, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, eb, err := ChurnStream(g, "mixed", 0.01, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("batches = %d/%d, want 3", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Inserts) != len(b[i].Inserts) || len(a[i].Deletes) != len(b[i].Deletes) {
			t.Fatalf("batch %d differs across identical seeds", i)
		}
		for j := range a[i].Inserts {
			if a[i].Inserts[j] != b[i].Inserts[j] {
				t.Fatalf("insert %d/%d differs", i, j)
			}
		}
	}
	if len(ea) != len(eb) {
		t.Fatalf("final edge lists differ: %d vs %d", len(ea), len(eb))
	}
	c, _, err := ChurnStream(g, "mixed", 0.01, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := len(c[0].Inserts) == len(a[0].Inserts)
	if same {
		for j := range c[0].Inserts {
			if c[0].Inserts[j] != a[0].Inserts[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical first batch")
	}
}

func TestChurnStreamComposesToFinalEdges(t *testing.T) {
	g := Uniform(80, 400, 5, 7)
	n := g.NumVertices()
	batches, final, err := ChurnStream(g, "mixed", 0.05, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Applying the batches to a copy of the base graph must land on the
	// returned final edge list.
	mg, err := graph.FromEdges(n, g.Edges(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := mg.ApplyEdgeMutations(b.Inserts, b.Deletes); err != nil {
			t.Fatal(err)
		}
	}
	want, err := graph.FromEdges(n, final, true)
	if err != nil {
		t.Fatal(err)
	}
	if mg.NumEdges() != want.NumEdges() {
		t.Fatalf("edge count after replay = %d, want %d", mg.NumEdges(), want.NumEdges())
	}
	me, we := mg.Edges(), want.Edges()
	for i := range me {
		if me[i] != we[i] {
			t.Fatalf("edge %d: replay %v, final list %v", i, me[i], we[i])
		}
	}
}

func TestChurnStreamKinds(t *testing.T) {
	g := Uniform(50, 300, 0, 3)
	ins, _, err := ChurnStream(g, "insert", 0.02, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range ins {
		if len(b.Deletes) != 0 || len(b.Inserts) == 0 {
			t.Fatal("insert stream contains deletes or no inserts")
		}
	}
	del, finalDel, err := ChurnStream(g, "delete", 0.02, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range del {
		if len(b.Inserts) != 0 || len(b.Deletes) == 0 {
			t.Fatal("delete stream contains inserts or no deletes")
		}
	}
	if len(finalDel) >= g.NumEdges() {
		t.Fatal("delete stream did not shrink the edge list")
	}
	if _, _, err := ChurnStream(g, "bogus", 0.02, 1, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, _, err := ChurnStream(g, "mixed", 0, 1, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
}

func TestChurnStreamPreservesDAGOrientation(t *testing.T) {
	g := DAG(100, 2, 10, 5, 9)
	batches, final, err := ChurnStream(g, "mixed", 0.05, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		for _, e := range b.Inserts {
			if e.Src >= e.Dst {
				t.Fatalf("insert %v breaks the DAG's id ordering", e)
			}
		}
	}
	for _, e := range final {
		if e.Src >= e.Dst {
			t.Fatalf("final edge %v breaks the DAG's id ordering", e)
		}
	}
}

func TestWriteChurnTSV(t *testing.T) {
	g := Uniform(30, 150, 2, 13)
	batches, _, err := ChurnStream(g, "mixed", 0.05, 2, 19)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChurnTSV(&buf, batches); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# batch") != 2 {
		t.Fatalf("batch headers missing:\n%s", out)
	}
	if !strings.Contains(out, "+ ") || !strings.Contains(out, "- ") {
		t.Fatalf("expected both insert and delete lines:\n%s", out)
	}
}
