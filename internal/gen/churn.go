package gen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"

	"powerlog/internal/graph"
)

// ChurnBatch is one reproducible batch of base-fact churn: edges to
// insert and endpoint pairs to delete (a delete drops every parallel
// edge with the pair, matching the engine's Mutation semantics).
type ChurnBatch struct {
	Inserts []graph.Edge
	Deletes []graph.Edge
}

// ChurnStream draws `batches` mutation batches against g, each touching
// about frac of the current edge count: kind "insert" adds fresh edges,
// "delete" removes sampled existing pairs, "mixed" does both. The
// stream is a pure function of (g, kind, frac, batches, seed), so a
// bench or test run can regenerate it exactly; batches compose — each
// draws against the edge list the previous batch left behind — and the
// final edge list is returned for building the mutated graph directly.
//
// Inserted weights are sampled from the current weight distribution
// (existing edges drawn uniformly), so weighted programs keep seeing
// plausible inputs. When every base edge runs from a lower to a higher
// vertex id (the DAG generators' topological-order invariant), inserts
// preserve that orientation so DAG programs stay acyclic.
func ChurnStream(g *graph.Graph, kind string, frac float64, batches int, seed int64) ([]ChurnBatch, []graph.Edge, error) {
	switch kind {
	case "insert", "delete", "mixed":
	default:
		return nil, nil, fmt.Errorf("gen: unknown churn kind %q (want insert, delete, or mixed)", kind)
	}
	if frac <= 0 || frac > 1 {
		return nil, nil, fmt.Errorf("gen: churn fraction %v outside (0,1]", frac)
	}
	n := g.NumVertices()
	if n < 2 {
		return nil, nil, fmt.Errorf("gen: churn needs at least 2 vertices")
	}
	edges := g.Edges()
	dag := true
	for _, e := range edges {
		if e.Src >= e.Dst {
			dag = false
			break
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]ChurnBatch, 0, batches)
	for b := 0; b < batches; b++ {
		k := int(frac * float64(len(edges)))
		if k < 1 {
			k = 1
		}
		var batch ChurnBatch
		if kind != "insert" && len(edges) > 0 {
			gone := map[int64]bool{}
			for i := 0; i < k; i++ {
				e := edges[rng.Intn(len(edges))]
				pair := int64(e.Src)<<32 | int64(uint32(e.Dst))
				if gone[pair] {
					continue
				}
				gone[pair] = true
				batch.Deletes = append(batch.Deletes, graph.Edge{Src: e.Src, Dst: e.Dst})
			}
			kept := make([]graph.Edge, 0, len(edges))
			for _, e := range edges {
				if !gone[int64(e.Src)<<32|int64(uint32(e.Dst))] {
					kept = append(kept, e)
				}
			}
			edges = kept
		}
		if kind != "delete" {
			for i := 0; i < k; i++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				if src == dst {
					continue
				}
				if dag && src > dst {
					src, dst = dst, src
				}
				w := 1.0
				if g.Weighted() && len(edges) > 0 {
					w = edges[rng.Intn(len(edges))].W
				}
				e := graph.Edge{Src: int32(src), Dst: int32(dst), W: w}
				batch.Inserts = append(batch.Inserts, e)
				edges = append(edges, e)
			}
		}
		out = append(out, batch)
	}
	return out, edges, nil
}

// WriteChurnTSV renders a churn stream in the plgen text format: one
// "# batch k" header per batch, then "+ src dst w" insert lines and
// "- src dst" delete lines.
func WriteChurnTSV(w io.Writer, batches []ChurnBatch) error {
	bw := bufio.NewWriter(w)
	for i, b := range batches {
		fmt.Fprintf(bw, "# batch %d\n", i+1)
		for _, e := range b.Deletes {
			fmt.Fprintf(bw, "- %d %d\n", e.Src, e.Dst)
		}
		for _, e := range b.Inserts {
			fmt.Fprintf(bw, "+ %d %d %g\n", e.Src, e.Dst, e.W)
		}
	}
	return bw.Flush()
}
