// Package gen produces seeded synthetic graphs that stand in for the
// paper's six real-world datasets (Table 2). The real graphs (Flickr,
// LiveJournal, Orkut, ClueWeb09, Wiki-link, Arabic-2005) are not
// redistributable at laptop scale; the generators below preserve the
// properties the evaluation depends on — relative |V|/|E| ordering, degree
// skew (power-law via R-MAT), and diameter character — at roughly 1/400
// scale. All generators are deterministic in their seed.
package gen

import (
	"math"
	"math/rand"
	"sort"

	"powerlog/internal/graph"
)

// RMAT generates a power-law directed graph with 2^scale vertices and
// approximately m edges using the recursive-matrix method with the
// canonical (a,b,c,d) = (0.57,0.19,0.19,0.05) partition probabilities.
// Self-loops are kept (they occur in real crawls too); duplicate edges are
// removed. Weights are drawn uniformly from [1,maxW] when maxW > 0.
func RMAT(scale int, m int, maxW float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	const a, b, c = 0.57, 0.19, 0.19
	seen := make(map[int64]bool, m)
	edges := make([]graph.Edge, 0, m)
	for attempts := 0; len(edges) < m && attempts < 20*m; attempts++ {
		src, dst := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				dst |= 1 << bit
			case r < a+b+c: // bottom-left
				src |= 1 << bit
			default: // bottom-right
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		key := int64(src)<<32 | int64(dst)
		if seen[key] {
			continue
		}
		seen[key] = true
		w := 1.0
		if maxW > 0 {
			w = 1 + rng.Float64()*(maxW-1)
		}
		edges = append(edges, graph.Edge{Src: int32(src), Dst: int32(dst), W: w})
	}
	g, err := graph.FromEdges(n, edges, maxW > 0)
	if err != nil {
		panic("gen: rmat: " + err.Error())
	}
	return g
}

// Uniform generates an Erdős–Rényi style directed graph: m edges drawn
// uniformly over n×n (duplicates removed).
func Uniform(n, m int, maxW float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]bool, m)
	edges := make([]graph.Edge, 0, m)
	for attempts := 0; len(edges) < m && attempts < 20*m; attempts++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		key := int64(src)<<32 | int64(dst)
		if seen[key] {
			continue
		}
		seen[key] = true
		w := 1.0
		if maxW > 0 {
			w = 1 + rng.Float64()*(maxW-1)
		}
		edges = append(edges, graph.Edge{Src: int32(src), Dst: int32(dst), W: w})
	}
	g, err := graph.FromEdges(n, edges, maxW > 0)
	if err != nil {
		panic("gen: uniform: " + err.Error())
	}
	return g
}

// Chain generates a long path 0→1→…→n-1 with extra random shortcut edges;
// shortcuts control the diameter (0 shortcuts = diameter n-1). It models
// the high-diameter character of the Wiki-link crawl.
func Chain(n, shortcuts int, maxW float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n-1+shortcuts)
	for v := 0; v < n-1; v++ {
		w := 1.0
		if maxW > 0 {
			w = 1 + rng.Float64()*(maxW-1)
		}
		edges = append(edges, graph.Edge{Src: int32(v), Dst: int32(v + 1), W: w})
	}
	for i := 0; i < shortcuts; i++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		w := 1.0
		if maxW > 0 {
			w = 1 + rng.Float64()*(maxW-1)
		}
		edges = append(edges, graph.Edge{Src: int32(src), Dst: int32(dst), W: w})
	}
	g, err := graph.FromEdges(n, edges, maxW > 0)
	if err != nil {
		panic("gen: chain: " + err.Error())
	}
	return g
}

// LocalChain generates a path 0→1→…→n-1 plus short-range forward skips
// (each vertex gets ~skips extra edges to targets within span ahead).
// Unlike Chain's global shortcuts, local skips preserve a large diameter
// (≈ n/span) at high edge counts — the Wiki-link character of a deep
// crawl frontier.
func LocalChain(n, skips, span int, maxW float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*(skips+1))
	w := func() float64 {
		if maxW > 0 {
			return 1 + rng.Float64()*(maxW-1)
		}
		return 1
	}
	for v := 0; v < n-1; v++ {
		edges = append(edges, graph.Edge{Src: int32(v), Dst: int32(v + 1), W: w()})
		lim := span
		if v+lim >= n {
			lim = n - 1 - v
		}
		if lim <= 1 {
			continue
		}
		for i := 0; i < skips; i++ {
			dst := v + 1 + rng.Intn(lim)
			edges = append(edges, graph.Edge{Src: int32(v), Dst: int32(dst), W: w()})
		}
	}
	g, err := graph.FromEdges(n, edges, maxW > 0)
	if err != nil {
		panic("gen: localchain: " + err.Error())
	}
	return g
}

// DAG generates a random DAG: every edge goes from a lower to a strictly
// higher vertex id, so vertex order is a topological order. avgOut is the
// mean out-degree; edges reach forward at most span positions.
func DAG(n int, avgOut float64, span int, maxW float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < n-1; v++ {
		k := int(avgOut)
		if rng.Float64() < avgOut-float64(k) {
			k++
		}
		lim := span
		if v+lim >= n {
			lim = n - 1 - v
		}
		if lim <= 0 {
			continue
		}
		seen := map[int]bool{}
		for i := 0; i < k && len(seen) < lim; i++ {
			dst := v + 1 + rng.Intn(lim)
			if seen[dst] {
				continue
			}
			seen[dst] = true
			w := 1.0
			if maxW > 0 {
				w = 1 + rng.Float64()*(maxW-1)
			}
			edges = append(edges, graph.Edge{Src: int32(v), Dst: int32(dst), W: w})
		}
	}
	g, err := graph.FromEdges(n, edges, maxW > 0)
	if err != nil {
		panic("gen: dag: " + err.Error())
	}
	return g
}

// Trellis generates a Viterbi-style layered trellis: layers full of states
// with all transitions between consecutive layers, weighted by
// probabilities in (0,1]. Vertex id = layer*states + state.
func Trellis(layers, states int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := layers * states
	var edges []graph.Edge
	for l := 0; l < layers-1; l++ {
		for s := 0; s < states; s++ {
			for t := 0; t < states; t++ {
				p := 0.05 + 0.95*rng.Float64()
				edges = append(edges, graph.Edge{
					Src: int32(l*states + s),
					Dst: int32((l+1)*states + t),
					W:   p,
				})
			}
		}
	}
	g, err := graph.FromEdges(n, edges, true)
	if err != nil {
		panic("gen: trellis: " + err.Error())
	}
	return g
}

// VertexAttr returns a deterministic per-vertex attribute column in
// [lo,hi), e.g. Adsorption's injection and continuation probabilities.
func VertexAttr(n int, lo, hi float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// NormalizeWeightsByOut rescales each vertex's out-edge weights so they
// sum to at most limit, producing a sub-stochastic propagation matrix (as
// Adsorption/BP/Katz need for convergence). The graph is modified in
// place via its weight slice.
func NormalizeWeightsByOut(g *graph.Graph, limit float64) {
	if !g.Weighted() {
		return
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		lo, hi := g.EdgeRange(v)
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += g.Weight(i)
		}
		if sum <= limit || sum == 0 {
			continue
		}
		scale := limit / sum
		_, ws := g.Neighbors(v)
		for i := range ws {
			ws[i] *= scale
		}
	}
}

// SpectralRadiusEstimate estimates the largest eigenvalue of the (out-)
// adjacency matrix by a few power-iteration steps — the bound Katz's
// attenuation must stay under (Katz 1953: α < 1/λ_max) for the metric to
// be finite.
func SpectralRadiusEstimate(g *graph.Graph, iters int) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		for i := range y {
			y[i] = 0
		}
		for v := int32(0); v < int32(n); v++ {
			if x[v] == 0 {
				continue
			}
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				y[g.Target(e)] += x[v]
			}
		}
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = sqrt(norm)
		if norm == 0 {
			return 0
		}
		lambda = norm / l2(x)
		for i := range y {
			y[i] /= norm
		}
		x, y = y, x
	}
	return lambda
}

func l2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return sqrt(s)
}

func sqrt(v float64) float64 { return math.Sqrt(v) }

// ApproxDiameter estimates the diameter by BFS from a few seeds (lower
// bound; used by tests and the dataset report).
func ApproxDiameter(g *graph.Graph, probes int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	best := 0
	dist := make([]int32, n)
	for p := 0; p < probes; p++ {
		start := int32(rng.Intn(n))
		for i := range dist {
			dist[i] = -1
		}
		dist[start] = 0
		queue := []int32{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if int(dist[v]) > best {
				best = int(dist[v])
			}
			ts, _ := g.Neighbors(v)
			for _, t := range ts {
				if dist[t] < 0 {
					dist[t] = dist[v] + 1
					queue = append(queue, t)
				}
			}
		}
	}
	return best
}

// GiniOutDegree measures degree skew in [0,1): 0 is perfectly even; real
// social/web graphs sit high. Used to validate the power-law generators.
func GiniOutDegree(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	degs := make([]float64, n)
	total := 0.0
	for v := 0; v < n; v++ {
		degs[v] = float64(g.OutDegree(int32(v)))
		total += degs[v]
	}
	if total == 0 {
		return 0
	}
	// Sort ascending and compute Gini via the rank formula.
	sort.Float64s(degs)
	cum := 0.0
	for i, d := range degs {
		cum += d * float64(2*(i+1)-n-1)
	}
	return cum / (float64(n) * total)
}
