package gen

import (
	"testing"
)

func TestRMATDeterministicAndSkewed(t *testing.T) {
	g1 := RMAT(10, 5000, 0, 42)
	g2 := RMAT(10, 5000, 0, 42)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edge mismatch under same seed")
		}
	}
	g3 := RMAT(10, 5000, 0, 43)
	if g3.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
	if g1.NumEdges() < 4500 {
		t.Errorf("requested 5000 edges, got %d", g1.NumEdges())
	}
	// Power-law: R-MAT should be clearly more skewed than uniform.
	u := Uniform(1024, 5000, 0, 42)
	if gr, gu := GiniOutDegree(g1), GiniOutDegree(u); gr <= gu {
		t.Errorf("R-MAT Gini %v should exceed uniform Gini %v", gr, gu)
	}
}

func TestUniformWeights(t *testing.T) {
	g := Uniform(200, 1000, 50, 7)
	if !g.Weighted() {
		t.Fatal("should be weighted")
	}
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 50 {
			t.Fatalf("weight %v outside [1,50]", e.W)
		}
	}
	if Uniform(200, 1000, 0, 7).Weighted() {
		t.Error("maxW=0 should be unweighted")
	}
}

func TestChainDiameter(t *testing.T) {
	long := Chain(500, 0, 0, 1)
	short := Uniform(500, 6000, 0, 1)
	dl := ApproxDiameter(long, 4, 9)
	ds := ApproxDiameter(short, 4, 9)
	if dl <= ds {
		t.Errorf("chain diameter %d should exceed uniform diameter %d", dl, ds)
	}
	if long.NumEdges() != 499 {
		t.Errorf("pure chain edges = %d", long.NumEdges())
	}
}

func TestDAGIsAcyclic(t *testing.T) {
	g := DAG(400, 3, 40, 10, 5)
	for _, e := range g.Edges() {
		if e.Dst <= e.Src {
			t.Fatalf("edge %v violates topological order", e)
		}
	}
	if g.NumEdges() == 0 {
		t.Fatal("empty DAG")
	}
}

func TestTrellisShape(t *testing.T) {
	g := Trellis(5, 4, 3)
	if g.NumVertices() != 20 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() != 4*4*4 {
		t.Fatalf("E = %d", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.W <= 0 || e.W > 1 {
			t.Fatalf("transition probability %v outside (0,1]", e.W)
		}
		if e.Dst/4 != e.Src/4+1 {
			t.Fatalf("edge %v skips a layer", e)
		}
	}
}

func TestVertexAttrRange(t *testing.T) {
	a := VertexAttr(1000, 0.2, 0.8, 11)
	b := VertexAttr(1000, 0.2, 0.8, 11)
	for i := range a {
		if a[i] < 0.2 || a[i] >= 0.8 {
			t.Fatalf("attr %v outside [0.2,0.8)", a[i])
		}
		if a[i] != b[i] {
			t.Fatal("same seed must give same attrs")
		}
	}
}

func TestNormalizeWeightsByOut(t *testing.T) {
	g := Uniform(100, 800, 10, 3)
	NormalizeWeightsByOut(g, 0.9)
	for v := int32(0); v < 100; v++ {
		_, ws := g.Neighbors(v)
		sum := 0.0
		for _, w := range ws {
			sum += w
		}
		if sum > 0.9+1e-9 {
			t.Fatalf("vertex %d out-weights sum %v > 0.9", v, sum)
		}
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 6 {
		t.Fatalf("want 6 datasets, got %d", len(ds))
	}
	// Relative ordering of original sizes must match Table 2.
	for i := 1; i < len(ds); i++ {
		if ds[i].OrigE < ds[i-1].OrigE {
			t.Errorf("dataset %s breaks Table-2 |E| ordering", ds[i].Name)
		}
	}
	if _, err := DatasetByName("LiveJ"); err != nil {
		t.Error(err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestDatasetBuildCachedAndScaled(t *testing.T) {
	d, err := DatasetByName("Flickr")
	if err != nil {
		t.Fatal(err)
	}
	g1 := d.Build(false)
	g2 := d.Build(false)
	if g1 != g2 {
		t.Error("Build should cache")
	}
	if g1.NumEdges() < 50000 {
		t.Errorf("Flickr stand-in too small: %d edges", g1.NumEdges())
	}
	gw := d.Build(true)
	if !gw.Weighted() {
		t.Error("weighted build should carry weights")
	}
}

func TestTinyDatasets(t *testing.T) {
	for _, d := range TinyDatasets() {
		g := d.Build(true)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty", d.Name)
		}
	}
}
