// Package ref contains independent sequential reference implementations
// of the catalogue algorithms. The test suite checks every engine mode
// against these oracles; they deliberately use classic textbook
// algorithms (Dijkstra, topological DP, Jacobi iteration) rather than the
// engine's delta machinery, so agreement is meaningful.
package ref

import (
	"container/heap"
	"math"

	"powerlog/internal/graph"
)

// Dijkstra computes single-source shortest path distances; unreachable
// vertices get +Inf.
func Dijkstra(g *graph.Graph, src int32) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if int(src) >= n {
		return dist
	}
	dist[src] = 0
	pq := &kvHeap{{float64(0), src}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(kvPair)
		if top.v > dist[top.k] {
			continue
		}
		ts, ws := g.Neighbors(top.k)
		for i, t := range ts {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if nd := top.v + w; nd < dist[t] {
				dist[t] = nd
				heap.Push(pq, kvPair{nd, t})
			}
		}
	}
	return dist
}

type kvPair struct {
	v float64
	k int32
}

type kvHeap []kvPair

func (h kvHeap) Len() int            { return len(h) }
func (h kvHeap) Less(i, j int) bool  { return h[i].v < h[j].v }
func (h kvHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *kvHeap) Push(x interface{}) { *h = append(*h, x.(kvPair)) }
func (h *kvHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MinLabelPropagation computes the Datalog CC semantics: every vertex
// with an out-edge starts labelled with its own id; labels propagate along
// directed edges and each vertex keeps the minimum it has ever seen.
// Vertices never reached and without out-edges keep +Inf. A simple
// worklist relaxation, independent of the engine's delta plumbing.
func MinLabelPropagation(g *graph.Graph) []float64 {
	n := g.NumVertices()
	label := make([]float64, n)
	for i := range label {
		label[i] = math.Inf(1)
	}
	var work []int32
	for v := int32(0); v < int32(n); v++ {
		if g.OutDegree(v) > 0 {
			label[v] = float64(v)
			work = append(work, v)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		ts, _ := g.Neighbors(v)
		for _, t := range ts {
			if label[v] < label[t] {
				label[t] = label[v]
				work = append(work, t)
			}
		}
	}
	return label
}

// EdgeFactor computes the linear propagation coefficient of one edge for
// LinearLimit: the multiplier applied to the source value.
type EdgeFactor func(src int32, edgeIdx int32) float64

// LinearLimit iterates x ← c + Mᵀx (Jacobi) until the L1 change drops
// below tol or iters rounds pass, where M's entries are given by factor
// per edge. This is the common limit form of PageRank, Adsorption, Katz,
// Belief Propagation, and SimRank:
//
//	x(y) = c(y) + Σ_{x→y} factor(x, e) · x(x).
func LinearLimit(g *graph.Graph, factor EdgeFactor, c []float64, iters int, tol float64) []float64 {
	n := g.NumVertices()
	cur := make([]float64, n)
	next := make([]float64, n)
	copy(cur, c)
	for it := 0; it < iters; it++ {
		copy(next, c)
		for v := int32(0); v < int32(n); v++ {
			if cur[v] == 0 {
				continue
			}
			lo, hi := g.EdgeRange(v)
			for e := lo; e < hi; e++ {
				next[g.Target(e)] += factor(v, e) * cur[v]
			}
		}
		diff := 0.0
		for i := range cur {
			diff += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if diff < tol {
			break
		}
	}
	return cur
}

// PageRank evaluates Program 2's semantics: r(y) = 0.15 + 0.85·Σ r(x)/d(x).
func PageRank(g *graph.Graph, iters int, tol float64) []float64 {
	n := g.NumVertices()
	deg := g.OutDegrees()
	c := make([]float64, n)
	for i := range c {
		c[i] = 0.15
	}
	return LinearLimit(g, func(src, _ int32) float64 { return 0.85 / deg[src] }, c, iters, tol)
}

// Katz evaluates Program 5: k(y) = [y=src]·seed + 0.1·Σ k(x).
func Katz(g *graph.Graph, src int32, seed float64, iters int, tol float64) []float64 {
	c := make([]float64, g.NumVertices())
	c[src] = seed
	return LinearLimit(g, func(int32, int32) float64 { return 0.1 }, c, iters, tol)
}

// Adsorption evaluates Program 4: a(y) = i(y)·p2(y) + 0.7·Σ w·pc(x)·a(x).
func Adsorption(g *graph.Graph, inj, pi, pc []float64, iters int, tol float64) []float64 {
	n := g.NumVertices()
	c := make([]float64, n)
	for i := range c {
		c[i] = inj[i] * pi[i]
	}
	return LinearLimit(g, func(src, e int32) float64 { return 0.7 * g.Weight(e) * pc[src] }, c, iters, tol)
}

// BeliefPropagation evaluates Program 6 (vertex-abstracted):
// b(t) = I(t) + 0.8·Σ w·h(s)·b(s).
func BeliefPropagation(g *graph.Graph, initial, h []float64, iters int, tol float64) []float64 {
	return LinearLimit(g, func(src, e int32) float64 { return 0.8 * g.Weight(e) * h[src] }, initial, iters, tol)
}

// DAGPathCount counts distinct paths from src to every vertex of a DAG
// whose vertex ids are a topological order (edges go low→high).
func DAGPathCount(g *graph.Graph, src int32) []float64 {
	n := g.NumVertices()
	count := make([]float64, n)
	count[src] = 1
	for v := int32(0); v < int32(n); v++ {
		if count[v] == 0 {
			continue
		}
		ts, _ := g.Neighbors(v)
		for _, t := range ts {
			count[t] += count[v]
		}
	}
	return count
}

// DAGPathWeightSum evaluates the Cost program's fixpoint on a
// topologically ordered DAG: C(y) = Σ_{x→y} (C(x) + w_xy), i.e.
// C = (I − Aᵀ)⁻¹ δ with δ(y) = Σ_in w. Equivalently, C(y) sums δ(z)
// over all unweighted paths z →* y (length ≥ 0).
func DAGPathWeightSum(g *graph.Graph) []float64 {
	n := g.NumVertices()
	c := make([]float64, n)
	for v := int32(0); v < int32(n); v++ { // δ: fold in-edge weights
		lo, hi := g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			c[g.Target(e)] += g.Weight(e)
		}
	}
	for v := int32(0); v < int32(n); v++ { // topological accumulation
		if c[v] == 0 {
			continue
		}
		lo, hi := g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			c[g.Target(e)] += c[v]
		}
	}
	return c
}

// ViterbiDP computes the maximum-product path probability from src over a
// DAG in topological vertex order (transition probabilities as weights).
func ViterbiDP(g *graph.Graph, src int32) []float64 {
	n := g.NumVertices()
	prob := make([]float64, n)
	prob[src] = 1
	for v := int32(0); v < int32(n); v++ {
		if prob[v] == 0 {
			continue
		}
		lo, hi := g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			t := g.Target(e)
			if p := prob[v] * g.Weight(e); p > prob[t] {
				prob[t] = p
			}
		}
	}
	return prob
}

// BFSDepth computes minimum hop counts from src (the LCA ancestor-depth
// oracle when run on the parent graph).
func BFSDepth(g *graph.Graph, src int32) []float64 {
	n := g.NumVertices()
	depth := make([]float64, n)
	for i := range depth {
		depth[i] = math.Inf(1)
	}
	depth[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		ts, _ := g.Neighbors(v)
		for _, t := range ts {
			if math.IsInf(depth[t], 1) {
				depth[t] = depth[v] + 1
				queue = append(queue, t)
			}
		}
	}
	return depth
}

// FloydWarshall computes all-pairs shortest paths of length ≥ 1 (no free
// zero-length self paths, matching the APSP program whose base case is
// the edge relation). dist[i][j] is +Inf when j is unreachable from i.
func FloydWarshall(g *graph.Graph) [][]float64 {
	n := g.NumVertices()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = math.Inf(1)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		lo, hi := g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			t := g.Target(e)
			if w := g.Weight(e); w < dist[v][t] {
				dist[v][t] = w
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + dist[k][j]; nd < dist[i][j] {
					dist[i][j] = nd
				}
			}
		}
	}
	return dist
}
