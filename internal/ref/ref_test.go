package ref

import (
	"math"
	"testing"

	"powerlog/internal/gen"
	"powerlog/internal/graph"
)

func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	// 0→1 (1), 0→2 (4), 1→2 (2), 1→3 (6), 2→3 (3)
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 2, W: 4},
		{Src: 1, Dst: 2, W: 2}, {Src: 1, Dst: 3, W: 6}, {Src: 2, Dst: 3, W: 3},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDijkstra(t *testing.T) {
	d := Dijkstra(diamond(t), 0)
	want := []float64{0, 1, 3, 6}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	// Unreachable source index beyond range.
	d = Dijkstra(diamond(t), 3)
	if d[0] != math.Inf(1) || d[3] != 0 {
		t.Error("reverse reachability wrong")
	}
}

func TestMinLabelPropagation(t *testing.T) {
	g, _ := graph.FromEdges(5, []graph.Edge{
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1}, {Src: 3, Dst: 4},
	}, false)
	l := MinLabelPropagation(g)
	if l[1] != 1 || l[2] != 1 {
		t.Errorf("component {1,2}: %v", l)
	}
	if l[3] != 3 || l[4] != 3 {
		t.Errorf("component {3,4}: %v", l)
	}
	if !math.IsInf(l[0], 1) {
		t.Errorf("isolated vertex 0 should stay unlabelled, got %v", l[0])
	}
}

func TestPageRankProperties(t *testing.T) {
	g := gen.RMAT(8, 1500, 0, 3)
	r := PageRank(g, 200, 1e-10)
	for v, x := range r {
		if x < 0.15-1e-9 {
			t.Fatalf("rank[%d] = %v below teleport floor", v, x)
		}
	}
	// Self-consistency: r = 0.15 + 0.85·Mᵀr.
	deg := g.OutDegrees()
	check := make([]float64, g.NumVertices())
	for i := range check {
		check[i] = 0.15
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ts, _ := g.Neighbors(v)
		for range ts {
		}
		lo, hi := g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			check[g.Target(e)] += 0.85 * r[v] / deg[v]
		}
	}
	for i := range check {
		if math.Abs(check[i]-r[i]) > 1e-6 {
			t.Fatalf("fixpoint violated at %d: %v vs %v", i, check[i], r[i])
		}
	}
}

func TestKatzLinear(t *testing.T) {
	g := diamond(t)
	k := Katz(g, 0, 10000, 100, 1e-12)
	// k(0)=10000; k(1)=0.1·k(0)=1000; k(2)=0.1·(k(0)+k(1))=1100;
	// k(3)=0.1·(k(1)+k(2))=210.
	want := []float64{10000, 1000, 1100, 210}
	for i := range want {
		if math.Abs(k[i]-want[i]) > 1e-6 {
			t.Errorf("katz[%d] = %v, want %v", i, k[i], want[i])
		}
	}
}

func TestDAGPathCount(t *testing.T) {
	g := diamond(t)
	c := DAGPathCount(g, 0)
	// Paths 0→3: 0-1-3, 0-1-2-3, 0-2-3.
	want := []float64{1, 1, 2, 3}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("count[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestDAGPathWeightSum(t *testing.T) {
	g := diamond(t)
	s := DAGPathWeightSum(g)
	// δ = {1:1, 2:6, 3:9}; C(1)=1; C(2)=6+C(0)+C(1)=7; C(3)=9+C(1)+C(2)=17.
	want := []float64{0, 1, 7, 17}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-9 {
			t.Errorf("sum[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestViterbiDP(t *testing.T) {
	g := gen.Trellis(4, 3, 5)
	p := ViterbiDP(g, 0)
	for v, x := range p {
		if x < 0 || x > 1 {
			t.Fatalf("prob[%d] = %v outside [0,1]", v, x)
		}
	}
	// Last layer must be reachable.
	reachable := false
	for v := 9; v < 12; v++ {
		if p[v] > 0 {
			reachable = true
		}
	}
	if !reachable {
		t.Error("no path to last layer")
	}
}

func TestBFSDepth(t *testing.T) {
	g, _ := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2},
	}, false)
	d := BFSDepth(g, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != 1 || !math.IsInf(d[3], 1) {
		t.Errorf("depth = %v", d)
	}
}

func TestFloydWarshall(t *testing.T) {
	g := diamond(t)
	d := FloydWarshall(g)
	if d[0][3] != 6 || d[1][3] != 5 || d[0][2] != 3 {
		t.Errorf("apsp = %v", d)
	}
	if !math.IsInf(d[3][0], 1) {
		t.Error("3 cannot reach 0")
	}
	// No free self paths: d[0][0] is +Inf on this DAG.
	if !math.IsInf(d[0][0], 1) {
		t.Errorf("d[0][0] = %v", d[0][0])
	}
}

func TestAdsorptionAndBP(t *testing.T) {
	g := gen.Uniform(50, 300, 1, 9)
	gen.NormalizeWeightsByOut(g, 1)
	n := g.NumVertices()
	ones := make([]float64, n)
	small := make([]float64, n)
	for i := range ones {
		ones[i] = 1
		small[i] = 0.3
	}
	a := Adsorption(g, ones, small, small, 500, 1e-12)
	for _, x := range a {
		if x < 0 || math.IsNaN(x) {
			t.Fatal("adsorption produced invalid value")
		}
	}
	b := BeliefPropagation(g, small, small, 500, 1e-12)
	for _, x := range b {
		if x < 0 || math.IsNaN(x) {
			t.Fatal("bp produced invalid value")
		}
	}
}
