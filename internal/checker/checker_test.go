package checker

import (
	"strings"
	"testing"

	"powerlog/internal/agg"
	"powerlog/internal/progs"
	"powerlog/internal/smt"
)

// TestTable1 reproduces the paper's Table 1: twelve programs pass the MRA
// condition check; CommNet and GCN-Forward fail.
func TestTable1(t *testing.T) {
	for _, p := range progs.Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep, _, err := CheckSource(p.Source)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if rep.Satisfied != p.ExpectSat {
				t.Errorf("MRA sat. = %v, want %v\n%s", rep.Satisfied, p.ExpectSat, rep)
			}
			if got := rep.Agg.String(); got != p.Aggregate {
				t.Errorf("aggregate = %s, want %s", got, p.Aggregate)
			}
		})
	}
}

func TestPageRankReport(t *testing.T) {
	rep, info, err := CheckSource(progs.PageRank)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Fatalf("PageRank must pass:\n%s", rep)
	}
	if rep.FPrime != "0.85 * rx / d" {
		t.Errorf("F' = %q", rep.FPrime)
	}
	if len(rep.CParts) != 1 || rep.CParts[0] != "0.15" {
		t.Errorf("C = %v", rep.CParts)
	}
	if info.Agg != agg.Sum {
		t.Errorf("agg = %v", info.Agg)
	}
	if !strings.Contains(rep.Inverse, "subtraction") {
		t.Errorf("inverse = %q", rep.Inverse)
	}
}

func TestGCNRefutationHasWitness(t *testing.T) {
	rep, _, err := CheckSource(progs.GCNForward)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatalf("GCN-Forward must fail:\n%s", rep)
	}
	if rep.P2.Verdict != smt.Invalid {
		t.Fatalf("P2 should be refuted with a model, got %v (%s)", rep.P2.Verdict, rep.P2.Reason)
	}
	if len(rep.P2.Witness) == 0 {
		t.Error("expected a concrete counterexample model")
	}
}

func TestMeanAggregateFailsP1(t *testing.T) {
	src := `
a(X,v) :- X=0, v=1.
a(Y,mean[v1]) :- a(X,v), edge(X,Y), v1 = v.
`
	rep, _, err := CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatal("mean must fail the check (not associative)")
	}
	if rep.P1.Verdict != smt.Invalid {
		t.Errorf("P1 = %v (%s), want Invalid", rep.P1.Verdict, rep.P1.Reason)
	}
	if !strings.Contains(rep.P2.Reason, "skipped") {
		t.Errorf("P2 should be skipped after P1 failure: %s", rep.P2.Reason)
	}
}

func TestViterbiUsesMonotoneLemma(t *testing.T) {
	rep, _, err := CheckSource(progs.Viterbi)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Fatalf("Viterbi must pass:\n%s", rep)
	}
	if !strings.Contains(rep.P2.Reason, "monotone-distribution") {
		t.Errorf("expected the lemma to fire, got: %s", rep.P2.Reason)
	}
}

func TestMinWithNegativeCoefficientFails(t *testing.T) {
	// f = -d under min reverses the order: must be rejected.
	src := `
a(X,v) :- X=0, v=0.
a(Y,min[v1]) :- a(X,v), edge(X,Y), v1 = 0 - v.
`
	rep, _, err := CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatalf("decreasing f under min must fail:\n%s", rep)
	}
}

func TestSumWithSquareFails(t *testing.T) {
	// f = x^2 is nonlinear: sum does not distribute.
	src := `
a(X,v) :- X=0, v=1.
a(Y,sum[v1]) :- a(X,v), edge(X,Y), v1 = v * v.
`
	rep, _, err := CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatal("quadratic f under sum must fail")
	}
	if rep.P2.Verdict != smt.Invalid {
		t.Errorf("want concrete refutation, got %v", rep.P2.Verdict)
	}
}

func TestReportString(t *testing.T) {
	rep, _, err := CheckSource(progs.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"sssp", "MRA satisfied", "P1", "P2", "F' = dx + dxy"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestCheckSourceErrors(t *testing.T) {
	if _, _, err := CheckSource("not a program"); err == nil {
		t.Error("parse error expected")
	}
	if _, _, err := CheckSource("a(X,v) :- b(X,v)."); err == nil {
		t.Error("analysis error expected for non-recursive program")
	}
}
