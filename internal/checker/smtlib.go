package checker

import (
	"fmt"
	"sort"
	"strings"

	"powerlog/internal/agg"
	"powerlog/internal/analyzer"
	"powerlog/internal/expr"
	"powerlog/internal/smt"
)

// EmitSMTLIB renders the Property-2 verification condition of an
// analysed program as SMT-LIB 2 text in the paper's Figure-4 encoding:
// declare the program's parameters as constants, define g and f, assert
// the double negation of G∘F'∘G(X) = G∘F'(X), and (check-sat). Feeding
// the output to a real Z3 returns "unsat" exactly when the internal
// solver reports Valid — the emitter exists so the substitution for Z3
// stays externally auditable.
func EmitSMTLIB(info *analyzer.Info) (string, error) {
	g, err := smtlibAgg(info.Agg)
	if err != nil {
		return "", err
	}
	valueVar := info.Rec.ValueVar
	fBody, err := smtlibExpr(info.Rec.FPrime, map[string]string{valueVar: "a"})
	if err != nil {
		return "", err
	}

	// Program parameters: every free variable of F' except the recursive
	// value variable, declared as real constants with their harvested
	// domain assertions (the paper's "(assert (> d 0))").
	var params []string
	for _, v := range info.Rec.FPrime.Vars() {
		if v != valueVar {
			params = append(params, v)
		}
	}
	sort.Strings(params)

	var b strings.Builder
	for _, p := range params {
		fmt.Fprintf(&b, "(declare-const %s Real)\n", p)
	}
	fmt.Fprintf(&b, "(define-fun g ((a Real) (b Real)) Real\n  %s)\n", g)
	fmt.Fprintf(&b, "(define-fun f ((a Real)) Real\n  %s)\n", fBody)
	for _, c := range info.Constraints {
		op, ok := smtlibRel(c.Rel)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "(assert (%s %s %s))\n", op, c.Var, smtlibNum(c.Bound))
	}
	// The Figure-4 template: NOT ∀x1,y1,x2,y2:
	//   g(f(g(x1,y1)), f(g(x2,y2))) = g(g(g(f(x1), f(y1)), f(x2)), f(y2))
	b.WriteString(`(assert (
    not (forall ((x1 Real) (y1 Real) (x2 Real) (y2 Real))
 (= (g (f (g x1 y1)) (f (g x2 y2)))
           (g (g (g (f x1) (f y1)) (f x2)) (f y2))))
))
(check-sat)
`)
	return b.String(), nil
}

func smtlibAgg(k agg.Kind) (string, error) {
	switch k {
	case agg.Sum, agg.Count:
		return "(+ a b)", nil
	case agg.Min:
		return "(ite (<= a b) a b)", nil
	case agg.Max:
		return "(ite (>= a b) a b)", nil
	case agg.Mean:
		return "(/ (+ a b) 2)", nil
	default:
		return "", fmt.Errorf("checker: no SMT-LIB encoding for aggregate %v", k)
	}
}

func smtlibRel(r smt.Rel) (string, bool) {
	switch r {
	case smt.Ge:
		return ">=", true
	case smt.Gt:
		return ">", true
	case smt.Le:
		return "<=", true
	case smt.Lt:
		return "<", true
	}
	return "", false
}

// smtlibExpr renders an expression in SMT-LIB prefix form, renaming
// variables per rename (the recursive value var becomes f's parameter).
func smtlibExpr(e *expr.Expr, rename map[string]string) (string, error) {
	switch e.Kind {
	case expr.KNum:
		return smtlibNum(e.Val), nil
	case expr.KVar:
		if r, ok := rename[e.Name]; ok {
			return r, nil
		}
		return e.Name, nil
	case expr.KAdd, expr.KSub, expr.KMul, expr.KDiv:
		ops := map[expr.Kind]string{expr.KAdd: "+", expr.KSub: "-", expr.KMul: "*", expr.KDiv: "/"}
		l, err := smtlibExpr(e.Args[0], rename)
		if err != nil {
			return "", err
		}
		r, err := smtlibExpr(e.Args[1], rename)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", ops[e.Kind], l, r), nil
	case expr.KNeg:
		a, err := smtlibExpr(e.Args[0], rename)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(- %s)", a), nil
	case expr.KCall:
		switch e.Name {
		case "relu":
			a, err := smtlibExpr(e.Args[0], rename)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(ite (> %s 0) %s 0)", a, a), nil
		case "abs":
			a, err := smtlibExpr(e.Args[0], rename)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(ite (>= %s 0) %s (- %s))", a, a, a), nil
		case "min", "max":
			l, err := smtlibExpr(e.Args[0], rename)
			if err != nil {
				return "", err
			}
			r, err := smtlibExpr(e.Args[1], rename)
			if err != nil {
				return "", err
			}
			cmp := "<="
			if e.Name == "max" {
				cmp = ">="
			}
			return fmt.Sprintf("(ite (%s %s %s) %s %s)", cmp, l, r, l, r), nil
		default:
			return "", fmt.Errorf("checker: builtin %q has no SMT-LIB real encoding (transcendental)", e.Name)
		}
	default:
		return "", fmt.Errorf("checker: bad expression kind %d", e.Kind)
	}
}

// smtlibNum renders a float as an SMT-LIB real literal (Z3 rejects "0.85"
// only when negative; negatives need (- x)).
func smtlibNum(v float64) string {
	if v < 0 {
		return fmt.Sprintf("(- %g)", -v)
	}
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".e") {
		s += ".0"
	}
	if strings.Contains(s, "e") {
		// Exponent forms are not core SMT-LIB real literals; expand.
		s = strings.TrimSuffix(fmt.Sprintf("%.12f", v), "0")
	}
	return s
}
