// Package checker implements the paper's automatic MRA condition checker
// (§3.3, §5.1): given an analysed recursive aggregate program it verifies
//
//	Property 1:  G(X∪Y) = G(Y∪X) and G(X∪Y) = G(G(X)∪Y)
//	             (the aggregate is commutative and associative), and
//	Property 2:  G∘F'∘G(X) = G∘F'(X),
//
// using the internal/smt solver in place of Z3. A program satisfying both
// may be executed with incremental (MRA) and asynchronous evaluation;
// otherwise PowerLog falls back to naive synchronous evaluation.
package checker

import (
	"fmt"
	"strings"

	"powerlog/internal/agg"
	"powerlog/internal/analyzer"
	"powerlog/internal/expr"
	"powerlog/internal/parser"
	"powerlog/internal/smt"
)

// Report is the outcome of checking one program, one row of Table 1.
type Report struct {
	Name      string   // head predicate (or caller-supplied program name)
	Agg       agg.Kind // the aggregate G
	Satisfied bool     // both properties verified

	P1 smt.Result // commutativity + associativity of G
	P2 smt.Result // G∘F'∘G = G∘F'

	FPrime  string // rendered F'
	CParts  []string
	Inverse string // the G⁻ used to derive ΔX¹ (paper §3.3)
	Notes   []string
}

// String renders the report as a human-readable block.
func (r *Report) String() string {
	var b strings.Builder
	status := "MRA satisfied"
	if !r.Satisfied {
		status = "MRA NOT satisfied"
	}
	fmt.Fprintf(&b, "%s: %s (aggregate %s)\n", r.Name, status, r.Agg)
	fmt.Fprintf(&b, "  P1 (comm+assoc): %v — %s\n", r.P1.Verdict, r.P1.Reason)
	fmt.Fprintf(&b, "  P2 (G∘F'∘G=G∘F'): %v — %s\n", r.P2.Verdict, r.P2.Reason)
	fmt.Fprintf(&b, "  F' = %s\n", r.FPrime)
	for _, c := range r.CParts {
		fmt.Fprintf(&b, "  C  = %s\n", c)
	}
	if r.Inverse != "" {
		fmt.Fprintf(&b, "  G⁻ = %s\n", r.Inverse)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CheckSource parses, analyses, and checks a Datalog program.
func CheckSource(src string) (*Report, *analyzer.Info, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	info, err := analyzer.Analyze(prog)
	if err != nil {
		return nil, nil, err
	}
	return Check(info), info, nil
}

// Check verifies the MRA conditions of Theorem 1 for an analysed program.
func Check(info *analyzer.Info) *Report {
	r := &Report{
		Name:   info.HeadName,
		Agg:    info.Agg,
		FPrime: info.Rec.FPrime.String(),
	}
	if info.Rec.CRec != nil {
		r.CParts = append(r.CParts, info.Rec.CRec.String()+" (split from the recursive body)")
	}
	for _, cb := range info.ConstBodies {
		r.CParts = append(r.CParts, cb.Expr.String())
	}
	r.Inverse = inverseName(info.Agg)

	r.P1 = checkProperty1(info.Agg)
	if r.P1.Verdict != smt.Valid {
		r.P2 = smt.Result{Verdict: smt.Unknown, Reason: "skipped: Property 1 failed"}
		return r
	}
	r.P2 = checkProperty2(info)
	r.Satisfied = r.P1.Verdict == smt.Valid && r.P2.Verdict == smt.Valid
	if !r.Satisfied {
		r.Notes = append(r.Notes, "program will run with naive evaluation on the sync engine")
	}
	return r
}

// aggAsBinary renders the aggregate as a binary expression, the encoding
// of §5.1: "we use the binary aggregate operators in Z3 code" since
// associativity lets g take any number of inputs as a fold.
func aggAsBinary(k agg.Kind, a, b *expr.Expr) *expr.Expr {
	switch k {
	case agg.Sum, agg.Count:
		return expr.Add(a, b)
	case agg.Min:
		return expr.Call("min", a, b)
	case agg.Max:
		return expr.Call("max", a, b)
	case agg.Mean:
		return expr.Div(expr.Add(a, b), expr.Num(2))
	default:
		panic("checker: unsupported aggregate")
	}
}

// checkProperty1 verifies commutativity and associativity of G.
func checkProperty1(k agg.Kind) smt.Result {
	a, b, c := expr.Var("a"), expr.Var("b"), expr.Var("c")
	comm := smt.ProveEq(aggAsBinary(k, a, b), aggAsBinary(k, b, a), nil)
	if comm.Verdict != smt.Valid {
		comm.Reason = "commutativity: " + comm.Reason
		return comm
	}
	assoc := smt.ProveEq(
		aggAsBinary(k, aggAsBinary(k, a, b), c),
		aggAsBinary(k, a, aggAsBinary(k, b, c)), nil)
	if assoc.Verdict != smt.Valid {
		assoc.Reason = "associativity: " + assoc.Reason
		return assoc
	}
	return smt.Result{Verdict: smt.Valid, Reason: "commutative and associative"}
}

// checkProperty2 verifies G∘F'∘G(X) = G∘F'(X) with the paper's four-input
// template (Figure 4). For the selective aggregates min and max it first
// tries the monotone-distribution lemma — an affine F' with a provably
// non-negative coefficient distributes over min/max — falling back to the
// generic case-split template.
func checkProperty2(info *analyzer.Info) smt.Result {
	valueVar := info.Rec.ValueVar
	fp := info.Rec.FPrime
	f := func(x *expr.Expr) *expr.Expr { return fp.Subst(valueVar, x) }

	if op := agg.ByKind(info.Agg); op.Selective() {
		if a, _, ok := expr.AffineIn(fp, valueVar); ok {
			sign := smt.SignOf(expr.Simplify(a), info.Constraints)
			if sign.NonNegative() {
				return smt.Result{
					Verdict: smt.Valid,
					Reason: fmt.Sprintf("monotone-distribution lemma: F' affine in %s with coefficient %s (sign %s) distributes over %s",
						valueVar, expr.Simplify(a), sign, info.Agg),
				}
			}
		}
	}

	lhs, rhs := p2Template(info.Agg, f)
	res := smt.ProveEq(lhs, rhs, info.Constraints)
	switch res.Verdict {
	case smt.Valid:
		res.Reason = "Z3-style template proof: " + res.Reason
	case smt.Invalid:
		res.Reason = "Property 2 refuted: " + res.Reason
	default:
		res.Reason = "undecided, treated as unsatisfied (conservative): " + res.Reason
	}
	return res
}

// p2Template builds the two sides of the paper's Figure-4 assertion:
//
//	lhs = g(f(g(x1,y1)), f(g(x2,y2)))          — aggregate first (G∘F'∘G)
//	rhs = g(g(g(f(x1),f(y1)), f(x2)), f(y2))   — expand first    (G∘F')
func p2Template(k agg.Kind, f func(*expr.Expr) *expr.Expr) (lhs, rhs *expr.Expr) {
	x1, y1 := expr.Var("ǂx1"), expr.Var("ǂy1")
	x2, y2 := expr.Var("ǂx2"), expr.Var("ǂy2")
	lhs = aggAsBinary(k, f(aggAsBinary(k, x1, y1)), f(aggAsBinary(k, x2, y2)))
	rhs = aggAsBinary(k, aggAsBinary(k, aggAsBinary(k, f(x1), f(y1)), f(x2)), f(y2))
	return lhs, rhs
}

func inverseName(k agg.Kind) string {
	switch k {
	case agg.Min:
		return "min (G⁻ = G for selective aggregates)"
	case agg.Max:
		return "max (G⁻ = G for selective aggregates)"
	case agg.Sum, agg.Count:
		return "pairwise subtraction"
	default:
		return ""
	}
}
