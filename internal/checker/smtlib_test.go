package checker

import (
	"strings"
	"testing"

	"powerlog/internal/analyzer"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
)

func analyzeFor(t *testing.T, src string) *analyzer.Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analyzer.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestEmitSMTLIBPageRank checks the emitter against the paper's Figure 4:
// same constants, same g/f definitions, same double-negated forall.
func TestEmitSMTLIBPageRank(t *testing.T) {
	info := analyzeFor(t, progs.PageRank)
	out, err := EmitSMTLIB(info)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"(declare-const d Real)",
		"(define-fun g ((a Real) (b Real)) Real\n  (+ a b))",
		"(define-fun f ((a Real)) Real\n  (/ (* 0.85 a) d))",
		"(assert (> d 0.0))",
		"(= (g (f (g x1 y1)) (f (g x2 y2)))",
		"(g (g (g (f x1) (f y1)) (f x2)) (f y2))",
		"(check-sat)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEmitSMTLIBSSSPUsesIte(t *testing.T) {
	info := analyzeFor(t, progs.SSSP)
	out, err := EmitSMTLIB(info)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(ite (<= a b) a b)") {
		t.Errorf("min aggregate should encode as ite:\n%s", out)
	}
	if !strings.Contains(out, "(+ a dxy)") {
		t.Errorf("f should be edge relaxation:\n%s", out)
	}
}

func TestEmitSMTLIBGCNRelu(t *testing.T) {
	info := analyzeFor(t, progs.GCNForward)
	out, err := EmitSMTLIB(info)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(ite (> (* a p) 0) (* a p) 0)") {
		t.Errorf("relu encoding missing:\n%s", out)
	}
}

func TestEmitSMTLIBTranscendentalRejected(t *testing.T) {
	info := analyzeFor(t, progs.CommNet)
	if _, err := EmitSMTLIB(info); err == nil {
		t.Fatal("tanh has no real-arithmetic SMT-LIB encoding; emitter must refuse")
	}
}

func TestEmitSMTLIBAllPolynomialCataloguePrograms(t *testing.T) {
	for _, p := range progs.Catalog() {
		if p.Name == "CommNet" {
			continue // transcendental
		}
		info := analyzeFor(t, p.Source)
		out, err := EmitSMTLIB(info)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		// Structural sanity: balanced parentheses and the template core.
		if strings.Count(out, "(") != strings.Count(out, ")") {
			t.Errorf("%s: unbalanced SMT-LIB output", p.Name)
		}
		if !strings.Contains(out, "(check-sat)") {
			t.Errorf("%s: missing (check-sat)", p.Name)
		}
	}
}

func TestSMTLIBNumbers(t *testing.T) {
	cases := map[float64]string{
		0.85: "0.85",
		0:    "0.0",
		2:    "2.0",
		-1.5: "(- 1.5)",
	}
	for in, want := range cases {
		if got := smtlibNum(in); got != want {
			t.Errorf("smtlibNum(%v) = %q, want %q", in, got, want)
		}
	}
}
