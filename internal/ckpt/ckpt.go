// Package ckpt serialises MonoTable shard state for fault tolerance —
// the local-filesystem substitute for the original system's HDFS
// checkpoints. A snapshot stores each row's Accumulation and pending
// Intermediate, taken at a BSP barrier (a consistent cut: no in-flight
// messages exist at a barrier). The binary format is length-prefixed
// little-endian with a CRC32 trailer, so a torn write is detected rather
// than silently restored.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Row is one checkpointed MonoTable row.
type Row struct {
	Key   int64
	Acc   float64
	Inter float64 // pending intermediate delta (identity if none)
}

const magic = "PLCK\x01"

// Write serialises rows to w.
func Write(w io.Writer, rows []Row) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write([]byte(magic)); err != nil {
		return err
	}
	var buf [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := mw.Write(buf[:])
		return err
	}
	if err := put(uint64(len(rows))); err != nil {
		return err
	}
	for _, r := range rows {
		if err := put(uint64(r.Key)); err != nil {
			return err
		}
		if err := put(math.Float64bits(r.Acc)); err != nil {
			return err
		}
		if err := put(math.Float64bits(r.Inter)); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	_, err := w.Write(buf[:4])
	return err
}

// Read deserialises rows, verifying the CRC.
func Read(r io.Reader) ([]Row, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, fmt.Errorf("ckpt: short header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", head)
	}
	var buf [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(tr, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("ckpt: bad count: %w", err)
	}
	if n > 1<<40 {
		return nil, fmt.Errorf("ckpt: implausible row count %d", n)
	}
	rows := make([]Row, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := get()
		if err != nil {
			return nil, fmt.Errorf("ckpt: truncated at row %d: %w", i, err)
		}
		a, err := get()
		if err != nil {
			return nil, fmt.Errorf("ckpt: truncated at row %d: %w", i, err)
		}
		d, err := get()
		if err != nil {
			return nil, fmt.Errorf("ckpt: truncated at row %d: %w", i, err)
		}
		rows = append(rows, Row{Key: int64(k), Acc: math.Float64frombits(a), Inter: math.Float64frombits(d)})
	}
	sum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("ckpt: missing checksum: %w", err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != sum {
		return nil, fmt.Errorf("ckpt: checksum mismatch (corrupt or torn snapshot)")
	}
	return rows, nil
}

// ShardPath names worker id's snapshot inside dir.
func ShardPath(dir string, worker int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.plck", worker))
}

// SaveShard atomically writes rows to the worker's shard file (write to
// a temp file, fsync, rename).
func SaveShard(dir string, worker int, rows []Row) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := ShardPath(dir, worker)
	tmp, err := os.CreateTemp(dir, "shard-*.tmp")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	if err := Write(bw, rows); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadAll reads every shard snapshot in dir (any worker count).
func LoadAll(dir string) ([]Row, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.plck"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("ckpt: no snapshots in %s", dir)
	}
	var all []Row
	for _, m := range matches {
		f, err := os.Open(m)
		if err != nil {
			return nil, err
		}
		rows, err := Read(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		all = append(all, rows...)
	}
	return all, nil
}
