// Package ckpt serialises MonoTable shard state for fault tolerance —
// the local-filesystem substitute for the original system's HDFS
// checkpoints. A snapshot stores each row's Accumulation and pending
// Intermediate plus a Meta header describing when and how it was taken:
// the epoch (superstep, local pass count, or snapshot-episode number),
// the worker count at snapshot time, and whether the epoch is a
// consistent cut (no in-flight messages — BSP barriers and coordinated
// snapshot episodes) or a per-worker stale snapshot (async/SSP workers
// checkpointing at their own pass boundaries, restorable for selective
// aggregates under Theorem 3's stale-tolerance argument). The binary
// format is length-prefixed little-endian with a CRC32 trailer, so a
// torn or corrupted file is detected and refused rather than silently
// restored. Shard files are epoch-stamped and written atomically (temp
// file + fsync + rename + directory fsync), and each worker keeps its
// two newest epochs — a crash leaving the newest epoch incomplete
// falls back to the previous complete one.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Row is one checkpointed MonoTable row.
type Row struct {
	Key   int64
	Acc   float64
	Inter float64 // pending intermediate delta (identity if none)
}

// Meta describes one shard snapshot.
type Meta struct {
	// Epoch orders snapshots: BSP superstep, async local pass count, or
	// coordinated snapshot-episode number.
	Epoch int
	// Worker is the writing worker's id (-1 on a LoadAll result, which
	// merges shards).
	Worker int
	// Workers is the fleet size at snapshot time; a cut restore needs a
	// shard from every one of them.
	Workers int
	// Cut marks a consistent cut (restorable exactly); a stale snapshot
	// (Cut=false) is only restorable for selective aggregates.
	Cut bool
	// MutEpoch is the mutation-log position the snapshot incorporates: 0
	// for a one-shot run or a session's initial fixpoint, k after the
	// k-th Apply. A restore replays the log entries after MutEpoch.
	MutEpoch int
}

const (
	magic   = "PLCK\x03"
	magicV2 = "PLCK\x02" // pre-session format: no MutEpoch word (read as 0)
)

// Write serialises rows with their Meta header to w.
func Write(w io.Writer, meta Meta, rows []Row) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write([]byte(magic)); err != nil {
		return err
	}
	var buf [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := mw.Write(buf[:])
		return err
	}
	var flags uint64
	if meta.Cut {
		flags |= 1
	}
	for _, v := range []uint64{uint64(meta.Epoch), uint64(meta.Worker), uint64(meta.Workers), flags, uint64(meta.MutEpoch)} {
		if err := put(v); err != nil {
			return err
		}
	}
	if err := put(uint64(len(rows))); err != nil {
		return err
	}
	for _, r := range rows {
		if err := put(uint64(r.Key)); err != nil {
			return err
		}
		if err := put(math.Float64bits(r.Acc)); err != nil {
			return err
		}
		if err := put(math.Float64bits(r.Inter)); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	_, err := w.Write(buf[:4])
	return err
}

// Read deserialises rows and the Meta header, verifying the CRC.
func Read(r io.Reader) ([]Row, Meta, error) {
	var meta Meta
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, meta, fmt.Errorf("ckpt: short header: %w", err)
	}
	if string(head) != magic && string(head) != magicV2 {
		return nil, meta, fmt.Errorf("ckpt: bad magic %q", head)
	}
	var buf [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(tr, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	metaWords := 5
	if string(head) == magicV2 {
		metaWords = 4 // v2 predates sessions: no MutEpoch word
	}
	hdr := make([]uint64, metaWords)
	for i := range hdr {
		v, err := get()
		if err != nil {
			return nil, meta, fmt.Errorf("ckpt: short meta: %w", err)
		}
		hdr[i] = v
	}
	meta = Meta{Epoch: int(hdr[0]), Worker: int(int64(hdr[1])), Workers: int(hdr[2]), Cut: hdr[3]&1 != 0}
	if metaWords > 4 {
		meta.MutEpoch = int(hdr[4])
	}
	n, err := get()
	if err != nil {
		return nil, meta, fmt.Errorf("ckpt: bad count: %w", err)
	}
	if n > 1<<40 {
		return nil, meta, fmt.Errorf("ckpt: implausible row count %d", n)
	}
	rows := make([]Row, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := get()
		if err != nil {
			return nil, meta, fmt.Errorf("ckpt: truncated at row %d: %w", i, err)
		}
		a, err := get()
		if err != nil {
			return nil, meta, fmt.Errorf("ckpt: truncated at row %d: %w", i, err)
		}
		d, err := get()
		if err != nil {
			return nil, meta, fmt.Errorf("ckpt: truncated at row %d: %w", i, err)
		}
		rows = append(rows, Row{Key: int64(k), Acc: math.Float64frombits(a), Inter: math.Float64frombits(d)})
	}
	sum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, meta, fmt.Errorf("ckpt: missing checksum: %w", err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != sum {
		return nil, meta, fmt.Errorf("ckpt: checksum mismatch (corrupt or torn snapshot)")
	}
	return rows, meta, nil
}

// ShardPath names one worker's snapshot for one epoch inside dir.
func ShardPath(dir string, epoch, worker int) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d-shard-%03d.plck", epoch, worker))
}

// parseShardName inverts ShardPath on a base filename.
func parseShardName(name string) (epoch, worker int, ok bool) {
	if _, err := fmt.Sscanf(name, "ep%06d-shard-%03d.plck", &epoch, &worker); err != nil {
		return 0, 0, false
	}
	return epoch, worker, true
}

// keepEpochs is how many epochs of snapshots each worker retains: the
// one just written plus its predecessor, so a crash that leaves the
// newest epoch incomplete across the fleet can still fall back to the
// previous complete one.
const keepEpochs = 2

// SaveShard atomically writes rows to the worker's shard file for
// meta.Epoch (write to a temp file in the same directory, fsync, rename,
// fsync the directory) and prunes this worker's epochs older than the
// newest keepEpochs. A crash at any point leaves either the new epoch's
// file complete or absent — never torn — and the previous epoch intact.
func SaveShard(dir string, meta Meta, rows []Row) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := ShardPath(dir, meta.Epoch, meta.Worker)
	tmp, err := os.CreateTemp(dir, "shard-*.tmp")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	if err := Write(bw, meta, rows); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Fsync the directory so the rename itself is durable (the file's
	// contents were synced above; the directory entry still needs it).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	pruneShards(dir, meta.Worker)
	return nil
}

// leaseTTL is how long a read lease stays fresh. A reader that crashed
// without releasing leaves a stale lease file behind; pruning resumes
// once it ages out (and the stale file is cleaned up along the way).
const leaseTTL = 30 * time.Second

// AcquireReadLease marks dir as being read by a restore or re-join in
// progress: while any fresh lease file exists, SaveShard defers its
// keep-2-epochs pruning entirely, so the epoch a concurrent reader
// selected cannot be deleted out from under it between its directory
// scan and its reads (the PR-9 satellite fix). The returned release
// function removes the lease; it is safe to call more than once.
func AcquireReadLease(dir string) (release func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(dir, "lease-*.rdl")
	if err != nil {
		return nil, err
	}
	name := f.Name()
	f.Close()
	return func() { _ = os.Remove(name) }, nil
}

// leased reports whether dir has a fresh read lease. Stale lease files
// (crashed readers past leaseTTL) are removed as they are found.
func leased(dir string) bool {
	matches, err := filepath.Glob(filepath.Join(dir, "lease-*.rdl"))
	if err != nil {
		return false
	}
	fresh := false
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		if time.Since(fi.ModTime()) < leaseTTL {
			fresh = true
		} else {
			_ = os.Remove(m)
		}
	}
	return fresh
}

// pruneShards removes this worker's epochs beyond the newest keepEpochs.
// Best-effort: pruning failures never fail the snapshot that just landed.
// While a read lease is held (a restore or live re-join is scanning the
// directory), pruning is skipped entirely — deferred to the next save.
func pruneShards(dir string, worker int) {
	if leased(dir) {
		return
	}
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("ep*-shard-%03d.plck", worker)))
	if err != nil || len(matches) <= keepEpochs {
		return
	}
	type shardFile struct {
		epoch int
		path  string
	}
	var files []shardFile
	for _, m := range matches {
		if e, w, ok := parseShardName(filepath.Base(m)); ok && w == worker {
			files = append(files, shardFile{e, m})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].epoch > files[j].epoch })
	for _, f := range files[min(len(files), keepEpochs):] {
		_ = os.Remove(f.path)
	}
}

// MissingShardError reports an incomplete snapshot set: the directory
// holds shards, but no epoch (for a cut) or no per-worker selection (for
// stale snapshots) covers every worker recorded in the headers.
type MissingShardError struct {
	Dir     string
	Epoch   int   // the newest epoch examined
	Workers int   // fleet size recorded in the shard headers
	Missing []int // worker ids with no usable shard
}

func (e *MissingShardError) Error() string {
	return fmt.Sprintf("ckpt: snapshot in %s is incomplete: epoch %d needs %d workers, missing shards for %v",
		e.Dir, e.Epoch, e.Workers, e.Missing)
}

// LoadAll assembles the most recent restorable snapshot in dir and
// returns its rows plus a Meta describing it (Worker = -1). For
// consistent-cut snapshots it picks the newest epoch for which every
// worker's shard is present; for stale snapshots it takes each worker's
// newest shard (epochs may differ — that is what "stale" licenses) and
// the returned Epoch is the minimum across workers. Any unreadable or
// checksum-failing shard file aborts the load: SaveShard never leaves a
// torn file behind, so corruption here is external damage and must be
// surfaced, not silently skipped. An incomplete worker set yields a
// *MissingShardError.
func LoadAll(dir string) ([]Row, Meta, error) {
	// The lease pins the directory contents: concurrent SaveShard calls
	// keep landing new epochs but defer pruning, so everything the glob
	// below sees stays readable until release.
	release, err := AcquireReadLease(dir)
	if err != nil {
		return nil, Meta{}, err
	}
	defer release()
	matches, err := filepath.Glob(filepath.Join(dir, "ep*-shard-*.plck"))
	if err != nil {
		return nil, Meta{}, err
	}
	if len(matches) == 0 {
		return nil, Meta{}, fmt.Errorf("ckpt: no snapshots in %s", dir)
	}
	type shard struct {
		meta Meta
		rows []Row
	}
	// epoch → worker → shard
	byEpoch := map[int]map[int]shard{}
	workers, cut := 0, false
	first := true
	for _, m := range matches {
		f, err := os.Open(m)
		if errors.Is(err, os.ErrNotExist) {
			// Pruned before the lease was taken (glob-then-open race with
			// a prune already in flight): the file is gone, not corrupt —
			// choose among what remains.
			continue
		}
		if err != nil {
			return nil, Meta{}, err
		}
		rows, meta, err := Read(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return nil, Meta{}, fmt.Errorf("%s: %w", m, err)
		}
		if epoch, worker, ok := parseShardName(filepath.Base(m)); !ok || epoch != meta.Epoch || worker != meta.Worker {
			return nil, Meta{}, fmt.Errorf("ckpt: %s: filename disagrees with header %+v", m, meta)
		}
		if first {
			workers, cut = meta.Workers, meta.Cut
			first = false
		} else if meta.Workers != workers || meta.Cut != cut {
			return nil, Meta{}, fmt.Errorf("ckpt: %s: mixed snapshot kinds in %s (workers %d/%d, cut %v/%v)",
				m, dir, meta.Workers, workers, meta.Cut, cut)
		}
		if byEpoch[meta.Epoch] == nil {
			byEpoch[meta.Epoch] = map[int]shard{}
		}
		byEpoch[meta.Epoch][meta.Worker] = shard{meta, rows}
	}
	if first {
		return nil, Meta{}, fmt.Errorf("ckpt: no snapshots in %s", dir)
	}
	epochs := make([]int, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))

	var chosen []shard
	outMeta := Meta{Worker: -1, Workers: workers, Cut: cut, MutEpoch: -1}
	if cut {
		// Newest epoch with the full worker set; an incomplete newest
		// epoch (crash mid-episode) falls back to its predecessor.
		for _, e := range epochs {
			if len(byEpoch[e]) == workers {
				for _, s := range byEpoch[e] {
					chosen = append(chosen, s)
				}
				outMeta.Epoch = e
				break
			}
		}
		if chosen == nil {
			newest := epochs[0]
			var missing []int
			for wk := 0; wk < workers; wk++ {
				if _, ok := byEpoch[newest][wk]; !ok {
					missing = append(missing, wk)
				}
			}
			return nil, Meta{}, &MissingShardError{Dir: dir, Epoch: newest, Workers: workers, Missing: missing}
		}
	} else {
		// Per-worker newest shard; every worker must have written at
		// least one.
		newestFor := map[int]shard{}
		for _, e := range epochs {
			for wk, s := range byEpoch[e] {
				if _, ok := newestFor[wk]; !ok {
					newestFor[wk] = s
				}
			}
		}
		var missing []int
		for wk := 0; wk < workers; wk++ {
			if _, ok := newestFor[wk]; !ok {
				missing = append(missing, wk)
			}
		}
		if len(missing) > 0 {
			return nil, Meta{}, &MissingShardError{Dir: dir, Epoch: epochs[0], Workers: workers, Missing: missing}
		}
		minEpoch := -1
		for _, s := range newestFor {
			chosen = append(chosen, s)
			if minEpoch < 0 || s.meta.Epoch < minEpoch {
				minEpoch = s.meta.Epoch
			}
		}
		outMeta.Epoch = minEpoch
	}
	// The restorable mutation-log position is the minimum across the
	// chosen shards: cut snapshots agree by construction; stale shards may
	// straddle an Apply, and re-replaying an already-incorporated entry is
	// sound for the selective aggregates stale restore is limited to
	// (inserts are idempotent improvements, deletions invalidate-and-
	// recompute against the already-mutated EDB).
	for _, s := range chosen {
		if outMeta.MutEpoch < 0 || s.meta.MutEpoch < outMeta.MutEpoch {
			outMeta.MutEpoch = s.meta.MutEpoch
		}
	}
	if outMeta.MutEpoch < 0 {
		outMeta.MutEpoch = 0
	}
	var all []Row
	for _, s := range chosen {
		all = append(all, s.rows...)
	}
	return all, outMeta, nil
}

// readShardFile opens and fully verifies one shard file.
func readShardFile(path string) ([]Row, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Meta{}, err
	}
	defer f.Close()
	rows, meta, err := Read(bufio.NewReader(f))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	return rows, meta, nil
}

// LoadShard reads one worker's shard for one exact epoch under a read
// lease — the combining-aggregate rollback path of a membership fence,
// where every survivor reloads its own slice of the cut the master
// selected.
func LoadShard(dir string, epoch, worker int) ([]Row, Meta, error) {
	release, err := AcquireReadLease(dir)
	if err != nil {
		return nil, Meta{}, err
	}
	defer release()
	return readShardFile(ShardPath(dir, epoch, worker))
}

// NewestShard reads one worker's newest readable shard under a read
// lease — the selective warm-start path of a live re-join, where the
// replacement worker restores whatever its predecessor last wrote
// (epoch irrelevant: Theorem 3 licenses any stale state). A worker with
// no shard on disk returns os.ErrNotExist; the caller cold-joins.
func NewestShard(dir string, worker int) ([]Row, Meta, error) {
	release, err := AcquireReadLease(dir)
	if err != nil {
		return nil, Meta{}, err
	}
	defer release()
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("ep*-shard-%03d.plck", worker)))
	if err != nil {
		return nil, Meta{}, err
	}
	epochs := make([]int, 0, len(matches))
	for _, m := range matches {
		if e, w, ok := parseShardName(filepath.Base(m)); ok && w == worker {
			epochs = append(epochs, e)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))
	for _, e := range epochs {
		rows, meta, err := readShardFile(ShardPath(dir, e, worker))
		if errors.Is(err, os.ErrNotExist) {
			continue // pruned before the lease landed; fall back
		}
		return rows, meta, err
	}
	return nil, Meta{}, fmt.Errorf("ckpt: no shard for worker %d in %s: %w", worker, dir, os.ErrNotExist)
}
