package ckpt

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func cutMeta(epoch, worker, workers int) Meta {
	return Meta{Epoch: epoch, Worker: worker, Workers: workers, Cut: true}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rows := []Row{
		{Key: 0, Acc: 1.5, Inter: math.Inf(1)},
		{Key: 42, Acc: -3, Inter: 0.25},
		{Key: 1<<40 + 7, Acc: 0, Inter: 0},
	}
	meta := Meta{Epoch: 7, Worker: 2, Workers: 5, Cut: true}
	var buf bytes.Buffer
	if err := Write(&buf, meta, rows); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range rows {
		if got[i].Key != rows[i].Key || got[i].Acc != rows[i].Acc || got[i].Inter != rows[i].Inter {
			t.Errorf("row %d = %+v, want %+v", i, got[i], rows[i])
		}
	}
}

func TestReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Meta{Worker: 0, Workers: 1}, nil); err != nil {
		t.Fatal(err)
	}
	got, meta, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	if meta.Cut {
		t.Error("stale meta round-tripped as cut")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, cutMeta(1, 0, 1), []Row{{Key: 1, Acc: 2, Inter: 3}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a payload byte.
	bad := append([]byte(nil), data...)
	bad[len(bad)-10] ^= 0xff
	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted payload should fail the checksum")
	}

	// Truncate (torn write).
	if _, _, err := Read(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncated snapshot should fail")
	}

	// Bad magic (includes any v1-format file: the version byte differs).
	bad = append([]byte(nil), data...)
	bad[0] = 'X'
	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{Key: rng.Int63(), Acc: rng.NormFloat64(), Inter: rng.NormFloat64()}
		}
		meta := Meta{Epoch: rng.Intn(1 << 20), Worker: rng.Intn(64), Workers: 64, Cut: rng.Intn(2) == 0}
		var buf bytes.Buffer
		if err := Write(&buf, meta, rows); err != nil {
			return false
		}
		got, gotMeta, err := Read(&buf)
		if err != nil || len(got) != len(rows) || gotMeta != meta {
			return false
		}
		for i := range rows {
			if got[i] != rows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSaveLoadShards(t *testing.T) {
	dir := t.TempDir()
	if err := SaveShard(dir, cutMeta(1, 0, 2), []Row{{Key: 0, Acc: 1, Inter: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := SaveShard(dir, cutMeta(1, 1, 2), []Row{{Key: 1, Acc: 2, Inter: 0.5}}); err != nil {
		t.Fatal(err)
	}
	all, meta, err := LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || meta.Epoch != 1 || !meta.Cut || meta.Workers != 2 {
		t.Fatalf("rows = %v meta = %+v", all, meta)
	}
	// A newer complete epoch supersedes the old one.
	if err := SaveShard(dir, cutMeta(2, 0, 2), []Row{{Key: 9, Acc: 9, Inter: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := SaveShard(dir, cutMeta(2, 1, 2), []Row{{Key: 8, Acc: 8, Inter: 8}}); err != nil {
		t.Fatal(err)
	}
	all, meta, err = LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[int64]bool{}
	for _, r := range all {
		keys[r.Key] = true
	}
	if !keys[9] || !keys[8] || keys[0] || meta.Epoch != 2 {
		t.Errorf("epoch 2 not selected: rows %v meta %+v", all, meta)
	}
	// No leftover temp files.
	tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmp) != 0 {
		t.Errorf("temp files left behind: %v", tmp)
	}
}

// TestIncompleteEpochFallsBack models a crash mid-episode: worker 0
// finished epoch 3, worker 1 did not. The restore must come from the
// last complete epoch, not mix epochs of a consistent cut.
func TestIncompleteEpochFallsBack(t *testing.T) {
	dir := t.TempDir()
	for _, wk := range []int{0, 1} {
		if err := SaveShard(dir, cutMeta(2, wk, 2), []Row{{Key: int64(wk), Acc: 2, Inter: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveShard(dir, cutMeta(3, 0, 2), []Row{{Key: 100, Acc: 3, Inter: 0}}); err != nil {
		t.Fatal(err)
	}
	all, meta, err := LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 2 {
		t.Fatalf("expected fallback to epoch 2, got %+v", meta)
	}
	for _, r := range all {
		if r.Key == 100 {
			t.Fatalf("row from incomplete epoch 3 leaked into restore: %v", all)
		}
	}
}

// TestCrashMidWriteLeavesPreviousReadable simulates dying partway
// through SaveShard: a stale partial temp file sits next to a complete
// previous snapshot. The previous snapshot must load untouched and the
// torn temp file must be ignored (it is not a .plck shard).
func TestCrashMidWriteLeavesPreviousReadable(t *testing.T) {
	dir := t.TempDir()
	if err := SaveShard(dir, cutMeta(1, 0, 1), []Row{{Key: 5, Acc: 5, Inter: 0}}); err != nil {
		t.Fatal(err)
	}
	// The crash: half a frame written to the temp file, never renamed.
	var buf bytes.Buffer
	if err := Write(&buf, cutMeta(2, 0, 1), []Row{{Key: 6, Acc: 6, Inter: 0}}); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()/2]
	if err := os.WriteFile(filepath.Join(dir, "shard-123.tmp"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	all, meta, err := LoadAll(dir)
	if err != nil {
		t.Fatalf("previous snapshot unreadable after simulated crash: %v", err)
	}
	if len(all) != 1 || all[0].Key != 5 || meta.Epoch != 1 {
		t.Fatalf("restored wrong state: %v %+v", all, meta)
	}
}

// TestTornShardRefused: a .plck file that fails its checksum must abort
// the whole load — never be silently skipped or restored.
func TestTornShardRefused(t *testing.T) {
	dir := t.TempDir()
	for _, wk := range []int{0, 1} {
		if err := SaveShard(dir, cutMeta(1, wk, 2), []Row{{Key: int64(wk), Acc: 1, Inter: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	path := ShardPath(dir, 1, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadAll(dir); err == nil {
		t.Fatal("torn shard silently restored")
	}
}

func TestLoadAllMissing(t *testing.T) {
	if _, _, err := LoadAll(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

func TestLoadAllReportsMissingShard(t *testing.T) {
	dir := t.TempDir()
	// Worker 1 of 3 never snapshotted at all.
	for _, wk := range []int{0, 2} {
		if err := SaveShard(dir, cutMeta(1, wk, 3), []Row{{Key: int64(wk), Acc: 1, Inter: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := LoadAll(dir)
	var miss *MissingShardError
	if !errors.As(err, &miss) {
		t.Fatalf("expected MissingShardError, got %v", err)
	}
	if miss.Workers != 3 || len(miss.Missing) != 1 || miss.Missing[0] != 1 {
		t.Fatalf("wrong report: %+v", miss)
	}
}

func TestLoadAllStaleTakesNewestPerWorker(t *testing.T) {
	dir := t.TempDir()
	stale := func(epoch, wk int) Meta { return Meta{Epoch: epoch, Worker: wk, Workers: 2} }
	if err := SaveShard(dir, stale(4, 0), []Row{{Key: 40, Acc: 4, Inter: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := SaveShard(dir, stale(6, 0), []Row{{Key: 60, Acc: 6, Inter: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := SaveShard(dir, stale(5, 1), []Row{{Key: 51, Acc: 5, Inter: 0}}); err != nil {
		t.Fatal(err)
	}
	all, meta, err := LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[int64]bool{}
	for _, r := range all {
		keys[r.Key] = true
	}
	if !keys[60] || !keys[51] || keys[40] {
		t.Fatalf("stale selection wrong: %v", all)
	}
	if meta.Cut || meta.Epoch != 5 {
		t.Fatalf("meta = %+v, want stale epoch 5 (the covered frontier)", meta)
	}
	// Missing worker in the stale family is reported too.
	dir2 := t.TempDir()
	if err := SaveShard(dir2, stale(1, 0), nil); err != nil {
		t.Fatal(err)
	}
	var miss *MissingShardError
	if _, _, err := LoadAll(dir2); !errors.As(err, &miss) {
		t.Fatalf("expected MissingShardError for absent stale worker, got %v", err)
	}
}

func TestLoadAllRejectsMixedKinds(t *testing.T) {
	dir := t.TempDir()
	if err := SaveShard(dir, cutMeta(1, 0, 2), nil); err != nil {
		t.Fatal(err)
	}
	if err := SaveShard(dir, Meta{Epoch: 1, Worker: 1, Workers: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadAll(dir); err == nil {
		t.Error("mixed cut/stale snapshot families should be rejected")
	}
}

func TestPruneKeepsTwoEpochs(t *testing.T) {
	dir := t.TempDir()
	for e := 1; e <= 5; e++ {
		if err := SaveShard(dir, cutMeta(e, 0, 1), []Row{{Key: int64(e), Acc: 1, Inter: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "ep*-shard-000.plck"))
	if len(matches) != keepEpochs {
		t.Fatalf("prune kept %v", matches)
	}
	_, meta, err := LoadAll(dir)
	if err != nil || meta.Epoch != 5 {
		t.Fatalf("newest epoch lost after prune: %+v %v", meta, err)
	}
}
