package ckpt

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rows := []Row{
		{Key: 0, Acc: 1.5, Inter: math.Inf(1)},
		{Key: 42, Acc: -3, Inter: 0.25},
		{Key: 1<<40 + 7, Acc: 0, Inter: 0},
	}
	var buf bytes.Buffer
	if err := Write(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range rows {
		if got[i].Key != rows[i].Key || got[i].Acc != rows[i].Acc || got[i].Inter != rows[i].Inter {
			t.Errorf("row %d = %+v, want %+v", i, got[i], rows[i])
		}
	}
}

func TestReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Row{{Key: 1, Acc: 2, Inter: 3}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a payload byte.
	bad := append([]byte(nil), data...)
	bad[len(bad)-10] ^= 0xff
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted payload should fail the checksum")
	}

	// Truncate (torn write).
	if _, err := Read(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncated snapshot should fail")
	}

	// Bad magic.
	bad = append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{Key: rng.Int63(), Acc: rng.NormFloat64(), Inter: rng.NormFloat64()}
		}
		var buf bytes.Buffer
		if err := Write(&buf, rows); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(rows) {
			return false
		}
		for i := range rows {
			if got[i] != rows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSaveLoadShards(t *testing.T) {
	dir := t.TempDir()
	if err := SaveShard(dir, 0, []Row{{Key: 0, Acc: 1, Inter: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := SaveShard(dir, 1, []Row{{Key: 1, Acc: 2, Inter: 0.5}}); err != nil {
		t.Fatal(err)
	}
	all, err := LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("rows = %v", all)
	}
	// Overwrite is atomic and replaces content.
	if err := SaveShard(dir, 0, []Row{{Key: 9, Acc: 9, Inter: 9}}); err != nil {
		t.Fatal(err)
	}
	all, err = LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[int64]bool{}
	for _, r := range all {
		keys[r.Key] = true
	}
	if !keys[9] || keys[0] {
		t.Errorf("overwrite failed: %v", all)
	}
	// No leftover temp files.
	tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmp) != 0 {
		t.Errorf("temp files left behind: %v", tmp)
	}
}

func TestLoadAllMissing(t *testing.T) {
	if _, err := LoadAll(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

func TestLoadAllRejectsCorruptShard(t *testing.T) {
	dir := t.TempDir()
	if err := SaveShard(dir, 0, []Row{{Key: 1, Acc: 2, Inter: 3}}); err != nil {
		t.Fatal(err)
	}
	path := ShardPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAll(dir); err == nil {
		t.Error("corrupt shard should fail LoadAll")
	}
}
