package ckpt

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

func TestMutEpochRoundTrip(t *testing.T) {
	meta := Meta{Epoch: 9, Worker: 1, Workers: 2, Cut: true, MutEpoch: 4}
	rows := []Row{{Key: 3, Acc: 1, Inter: 0.5}}
	var buf bytes.Buffer
	if err := Write(&buf, meta, rows); err != nil {
		t.Fatal(err)
	}
	_, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta = %+v, want %+v", got, meta)
	}
}

// writeV2 serialises the pre-session "PLCK\x02" format: the same layout
// without the MutEpoch meta word.
func writeV2(t *testing.T, meta Meta, rows []Row) []byte {
	t.Helper()
	var buf bytes.Buffer
	crc := crc32.NewIEEE()
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
		crc.Write(b[:])
	}
	buf.WriteString(magicV2)
	crc.Write([]byte(magicV2))
	var flags uint64
	if meta.Cut {
		flags |= 1
	}
	for _, v := range []uint64{uint64(meta.Epoch), uint64(meta.Worker), uint64(meta.Workers), flags} {
		put(v)
	}
	put(uint64(len(rows)))
	for _, r := range rows {
		put(uint64(r.Key))
		put(math.Float64bits(r.Acc))
		put(math.Float64bits(r.Inter))
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	buf.Write(tail[:])
	return buf.Bytes()
}

func TestReadV2Compat(t *testing.T) {
	meta := Meta{Epoch: 5, Worker: 0, Workers: 3, Cut: true}
	rows := []Row{{Key: 7, Acc: 2.5, Inter: 0}, {Key: 11, Acc: -1, Inter: 4}}
	got, gotMeta, err := Read(bytes.NewReader(writeV2(t, meta, rows)))
	if err != nil {
		t.Fatalf("v2 snapshot refused: %v", err)
	}
	if gotMeta.MutEpoch != 0 {
		t.Fatalf("v2 MutEpoch = %d, want 0", gotMeta.MutEpoch)
	}
	if gotMeta.Epoch != meta.Epoch || gotMeta.Cut != meta.Cut || gotMeta.Workers != meta.Workers {
		t.Fatalf("v2 meta = %+v, want %+v", gotMeta, meta)
	}
	if len(got) != len(rows) || got[0] != rows[0] || got[1] != rows[1] {
		t.Fatalf("v2 rows = %+v, want %+v", got, rows)
	}
}

func TestLoadAllMutEpochIsMinimum(t *testing.T) {
	// A restore can only rely on the mutations EVERY chosen shard has
	// incorporated, so LoadAll reports the minimum across shards.
	dir := t.TempDir()
	for w, me := range []int{3, 2} {
		meta := Meta{Epoch: 4, Worker: w, Workers: 2, Cut: true, MutEpoch: me}
		if err := SaveShard(dir, meta, []Row{{Key: int64(w), Acc: 1, Inter: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	_, meta, err := LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.MutEpoch != 2 {
		t.Fatalf("LoadAll MutEpoch = %d, want min shard value 2", meta.MutEpoch)
	}
}
