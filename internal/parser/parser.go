// Package parser implements a recursive-descent parser for the paper's
// Datalog surface syntax, producing internal/ast trees. It replaces the
// ANTLR frontend of the original PowerLog.
//
// Grammar (EBNF):
//
//	program     = { rule } .
//	rule        = [ label "." ] pred ":-" bodyList "." .
//	bodyList    = bodyOrTerm { ";" [ ":-" ] bodyOrTerm } .
//	bodyOrTerm  = body | termination .
//	body        = atom { "," atom } .
//	atom        = pred | compare .
//	pred        = ident "(" term { "," term } ")" .
//	term        = "_" | aggTerm | expr .
//	aggTerm     = aggName "[" [ "delta" ] ident "]" .
//	compare     = expr cmpOp expr .
//	termination = "{" aggName "[" deltaVar "]" "<" number "}" .
//	expr        = precedence-climbing over + - * / unary- calls parens .
//
// Facts (rules with no body, e.g. "edge(1,2,5).") are accepted and get an
// empty body list.
package parser

import (
	"fmt"

	"powerlog/internal/ast"
	"powerlog/internal/expr"
	"powerlog/internal/lexer"
)

// aggNames are the head-term aggregate spellings accepted by the parser;
// semantic validity (e.g. mean being non-associative) is the checker's job.
var aggNames = map[string]bool{
	"min": true, "max": true, "sum": true, "count": true, "mean": true, "avg": true,
	"mmin": true, "mmax": true, "msum": true, "mcount": true,
}

// Error is a parse error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a complete Datalog program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for p.peek().Kind != lexer.EOF {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, &Error{Line: 1, Col: 1, Msg: "empty program"}
	}
	return prog, nil
}

// ParseRule parses a single rule (convenience for tests and the REPL).
func ParseRule(src string) (*ast.Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 {
		return nil, fmt.Errorf("parser: expected exactly one rule, got %d", len(prog.Rules))
	}
	return prog.Rules[0], nil
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) peek() lexer.Token { return p.toks[p.pos] }
func (p *parser) peek2() lexer.Token { // token after next, EOF-safe
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t lexer.Token, format string, args ...any) error {
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errorf(t, "expected %v, found %v", k, t)
	}
	return p.advance(), nil
}

func (p *parser) rule() (*ast.Rule, error) {
	r := &ast.Rule{Line: p.peek().Line}
	// Optional label: IDENT '.' followed by another IDENT '(' (the head).
	if p.peek().Kind == lexer.Ident && p.peek2().Kind == lexer.Period {
		r.Label = p.advance().Text
		p.advance() // '.'
	}
	head, err := p.pred()
	if err != nil {
		return nil, err
	}
	r.Head = head
	if p.peek().Kind == lexer.Period { // fact
		p.advance()
		return r, nil
	}
	if _, err := p.expect(lexer.Implies); err != nil {
		return nil, err
	}
	for {
		if p.peek().Kind == lexer.LBrace {
			term, err := p.termination()
			if err != nil {
				return nil, err
			}
			if r.Term != nil {
				return nil, p.errorf(p.peek(), "duplicate termination clause")
			}
			r.Term = term
		} else {
			body, err := p.body()
			if err != nil {
				return nil, err
			}
			r.Bodies = append(r.Bodies, body)
		}
		switch p.peek().Kind {
		case lexer.Semi:
			p.advance()
			if p.peek().Kind == lexer.Implies { // "; :-" style continuation
				p.advance()
			}
		case lexer.Period:
			p.advance()
			if len(r.Bodies) == 0 {
				return nil, p.errorf(p.peek(), "rule %s has a termination clause but no body", r.Head.Name)
			}
			return r, nil
		default:
			return nil, p.errorf(p.peek(), "expected ';' or '.', found %v", p.peek())
		}
	}
}

func (p *parser) body() (*ast.Body, error) {
	b := &ast.Body{}
	for {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		b.Atoms = append(b.Atoms, a)
		if p.peek().Kind != lexer.Comma {
			return b, nil
		}
		p.advance()
	}
}

func (p *parser) atom() (*ast.Atom, error) {
	// IDENT '(' and not a builtin call ⇒ predicate atom. Builtin function
	// names (relu, abs, ...) can open a comparison expression instead.
	if p.peek().Kind == lexer.Ident && p.peek2().Kind == lexer.LParen {
		if _, isBuiltin := expr.Builtins[p.peek().Text]; !isBuiltin {
			pr, err := p.pred()
			if err != nil {
				return nil, err
			}
			return &ast.Atom{Kind: ast.AtomPred, Pred: pr}, nil
		}
	}
	cmp, err := p.compare()
	if err != nil {
		return nil, err
	}
	return &ast.Atom{Kind: ast.AtomCompare, Cmp: cmp}, nil
}

func (p *parser) pred() (*ast.Pred, error) {
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	pr := &ast.Pred{Name: name.Text}
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		pr.Args = append(pr.Args, t)
		switch p.peek().Kind {
		case lexer.Comma:
			p.advance()
		case lexer.RParen:
			p.advance()
			return pr, nil
		default:
			return nil, p.errorf(p.peek(), "expected ',' or ')' in %s(...), found %v", pr.Name, p.peek())
		}
	}
}

func (p *parser) term() (*ast.Term, error) {
	t := p.peek()
	switch {
	case t.Kind == lexer.Wildcard:
		p.advance()
		return &ast.Term{Kind: ast.TermWildcard}, nil
	case t.Kind == lexer.Ident && aggNames[t.Text] && p.peek2().Kind == lexer.LBracket:
		p.advance() // agg name
		p.advance() // '['
		v, err := p.deltaIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RBracket); err != nil {
			return nil, err
		}
		return &ast.Term{Kind: ast.TermAgg, Agg: &ast.AggTerm{Op: t.Text, Var: v}}, nil
	}
	e, err := p.expr(0)
	if err != nil {
		return nil, err
	}
	switch {
	case e.Kind == expr.KVar:
		return &ast.Term{Kind: ast.TermVar, Var: e.Name}, nil
	case e.Kind == expr.KNum:
		return &ast.Term{Kind: ast.TermNum, Num: e.Val}, nil
	default:
		return &ast.Term{Kind: ast.TermArith, Expr: e}, nil
	}
}

// deltaIdent parses an identifier optionally prefixed by "delta" or the
// Greek Δ glued to the name (Δa lexes as one identifier).
func (p *parser) deltaIdent() (string, error) {
	t, err := p.expect(lexer.Ident)
	if err != nil {
		return "", err
	}
	name := t.Text
	if name == "delta" && p.peek().Kind == lexer.Ident {
		name = p.advance().Text
	} else {
		for _, prefix := range []string{"Δ", "∆"} {
			if len(name) > len(prefix) && name[:len(prefix)] == prefix {
				name = name[len(prefix):]
				break
			}
		}
	}
	return name, nil
}

func (p *parser) compare() (*ast.Compare, error) {
	lhs, err := p.expr(0)
	if err != nil {
		return nil, err
	}
	t := p.peek()
	var op string
	switch t.Kind {
	case lexer.Eq:
		op = "="
	case lexer.Neq:
		op = "!="
	case lexer.Lt:
		op = "<"
	case lexer.Gt:
		op = ">"
	case lexer.Le:
		op = "<="
	case lexer.Ge:
		op = ">="
	default:
		return nil, p.errorf(t, "expected comparison operator, found %v", t)
	}
	p.advance()
	rhs, err := p.expr(0)
	if err != nil {
		return nil, err
	}
	return &ast.Compare{Op: op, LHS: lhs, RHS: rhs}, nil
}

func (p *parser) termination() (*ast.Termination, error) {
	if _, err := p.expect(lexer.LBrace); err != nil {
		return nil, err
	}
	aggTok, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if !aggNames[aggTok.Text] {
		return nil, p.errorf(aggTok, "unknown aggregate %q in termination clause", aggTok.Text)
	}
	if _, err := p.expect(lexer.LBracket); err != nil {
		return nil, err
	}
	v, err := p.deltaIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RBracket); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Lt); err != nil {
		return nil, err
	}
	num, err := p.expect(lexer.Number)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RBrace); err != nil {
		return nil, err
	}
	return &ast.Termination{Agg: aggTok.Text, Var: v, Threshold: num.Num}, nil
}

// Expression parsing with precedence climbing.
// minPrec: 0 = additive, 1 = multiplicative, 2 = unary.
func (p *parser) expr(minPrec int) (*expr.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var prec int
		switch t.Kind {
		case lexer.Plus, lexer.Minus:
			prec = 0
		case lexer.Star, lexer.Slash:
			prec = 1
		default:
			return lhs, nil
		}
		if prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.expr(prec + 1)
		if err != nil {
			return nil, err
		}
		switch t.Kind {
		case lexer.Plus:
			lhs = expr.Add(lhs, rhs)
		case lexer.Minus:
			lhs = expr.Sub(lhs, rhs)
		case lexer.Star:
			lhs = expr.Mul(lhs, rhs)
		case lexer.Slash:
			lhs = expr.Div(lhs, rhs)
		default:
			// Unreachable: the precedence switch above already returned
			// for every non-operator token.
		}
	}
}

func (p *parser) unary() (*expr.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.Minus:
		p.advance()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return expr.Neg(e), nil
	case lexer.Number:
		p.advance()
		return expr.Num(t.Num), nil
	case lexer.LParen:
		p.advance()
		e, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case lexer.Ident:
		p.advance()
		if p.peek().Kind == lexer.LParen { // builtin call
			p.advance()
			var args []*expr.Expr
			if p.peek().Kind != lexer.RParen {
				for {
					a, err := p.expr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().Kind != lexer.Comma {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return nil, err
			}
			call := expr.Call(t.Text, args...)
			if err := call.Check(); err != nil {
				return nil, p.errorf(t, "%v", err)
			}
			return call, nil
		}
		return expr.Var(t.Text), nil
	default:
		return nil, p.errorf(t, "expected expression, found %v", t)
	}
}
