package parser

import (
	"strings"
	"testing"

	"powerlog/internal/ast"
	"powerlog/internal/expr"
)

const ssspSrc = `
r1. sssp(X,d) :- X=1, d=0.
r2. sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
`

const pagerankSrc = `
r1. degree(X,count[Y]) :- edge(X,Y).
r2. rank(0,X,r) :- node(X), r = 0.
r3. rank(i+1,Y,sum[ry]) :- node(Y), ry = 0.15;
                        :- rank(i,X,rx), edge(X,Y), degree(X,d), ry = 0.85 * rx / d.
`

const adsorptionSrc = `
r1. I(x,i) :- node(x), i=1.
r2. L(0,x,l) :- node(x), l=0.
r3. L(j+1,y,sum[a1]) :- I(y,i), pi(y,p2), a1 = i * p2;
                        L(j,x,a), A(x,y,w), pc(x,p), a1 = 0.7 * a * w * p;
                        {sum[Δa] < 0.001}.
`

func TestParseSSSP(t *testing.T) {
	prog, err := Parse(ssspSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("got %d rules", len(prog.Rules))
	}
	r1, r2 := prog.Rules[0], prog.Rules[1]
	if r1.Label != "r1" || r2.Label != "r2" {
		t.Errorf("labels %q %q", r1.Label, r2.Label)
	}
	if r1.Head.Name != "sssp" || len(r1.Head.Args) != 2 {
		t.Errorf("r1 head: %v", r1.Head)
	}
	if !r2.IsRecursive() {
		t.Error("r2 should be recursive")
	}
	if r1.IsRecursive() {
		t.Error("r1 should not be recursive")
	}
	aggT, pos := r2.AggTermOf()
	if aggT == nil || aggT.Op != "min" || aggT.Var != "dy" || pos != 1 {
		t.Errorf("agg term: %+v at %d", aggT, pos)
	}
	if len(r2.Bodies) != 1 || len(r2.Bodies[0].Atoms) != 3 {
		t.Fatalf("r2 bodies: %+v", r2.Bodies)
	}
	last := r2.Bodies[0].Atoms[2]
	if last.Kind != ast.AtomCompare {
		t.Fatal("third atom should be the assignment")
	}
	v, def, ok := last.Cmp.IsAssignment()
	if !ok || v != "dy" || def.String() != "dx + dxy" {
		t.Errorf("assignment: %v = %v (%v)", v, def, ok)
	}
}

func TestParsePageRank(t *testing.T) {
	prog, err := Parse(pagerankSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("got %d rules", len(prog.Rules))
	}
	r3 := prog.Rules[2]
	if len(r3.Bodies) != 2 {
		t.Fatalf("r3 should have 2 bodies, got %d", len(r3.Bodies))
	}
	// Head: rank(i+1, Y, sum[ry]) — first arg is arithmetic.
	if r3.Head.Args[0].Kind != ast.TermArith {
		t.Errorf("head arg0 kind = %v", r3.Head.Args[0].Kind)
	}
	if got := r3.Head.Args[0].Expr.String(); got != "i + 1" {
		t.Errorf("head arg0 = %q", got)
	}
	agg, _ := r3.AggTermOf()
	if agg.Op != "sum" || agg.Var != "ry" {
		t.Errorf("agg = %+v", agg)
	}
	// Second body: recursive with the f expression.
	b2 := r3.Bodies[1]
	var def *expr.Expr
	for _, a := range b2.Atoms {
		if a.Kind == ast.AtomCompare {
			if _, d, ok := a.Cmp.IsAssignment(); ok {
				def = d
			}
		}
	}
	if def == nil || def.String() != "0.85 * rx / d" {
		t.Errorf("f expression = %v", def)
	}
}

func TestParseTermination(t *testing.T) {
	prog, err := Parse(adsorptionSrc)
	if err != nil {
		t.Fatal(err)
	}
	r3 := prog.Rules[2]
	if r3.Term == nil {
		t.Fatal("expected termination clause")
	}
	if r3.Term.Agg != "sum" || r3.Term.Var != "a" || r3.Term.Threshold != 0.001 {
		t.Errorf("termination = %+v", r3.Term)
	}
	if len(r3.Bodies) != 2 {
		t.Errorf("bodies = %d", len(r3.Bodies))
	}
}

func TestParseTerminationASCIIDelta(t *testing.T) {
	r, err := ParseRule(`k(i+1,y,sum[k1]) :- k(i,x,k0), edge(x,y), k1 = 0.1*k0; {sum[delta k1] < 0.001}.`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Term == nil || r.Term.Var != "k1" || r.Term.Threshold != 0.001 {
		t.Errorf("termination = %+v", r.Term)
	}
}

func TestParseFact(t *testing.T) {
	prog, err := Parse(`edge(1,2,5). edge(2,3,1.5).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	f := prog.Rules[0]
	if len(f.Bodies) != 0 || f.Head.Name != "edge" {
		t.Errorf("fact = %+v", f)
	}
	if f.Head.Args[2].Kind != ast.TermNum || prog.Rules[1].Head.Args[2].Num != 1.5 {
		t.Error("numeric args wrong")
	}
}

func TestParseWildcard(t *testing.T) {
	r, err := ParseRule(`cc(X,X) :- edge(X,_).`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bodies[0].Atoms[0].Pred.Args[1].Kind != ast.TermWildcard {
		t.Error("expected wildcard")
	}
}

func TestParseComments(t *testing.T) {
	src := `
% classic connected components
// line propagation
/* block
   comment */
cc(X,X) :- edge(X,_).
cc(Y,min[v]) :- cc(X,v), edge(X,Y).
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
}

func TestParseBuiltinCall(t *testing.T) {
	r, err := ParseRule(`gcn(j+1,Y,sum[g1]) :- gcn(j,X,g), A(X,Y,w), Para(p), g1 = relu(g*p)*w.`)
	if err != nil {
		t.Fatal(err)
	}
	var def *expr.Expr
	for _, a := range r.Bodies[0].Atoms {
		if a.Kind == ast.AtomCompare {
			_, def, _ = a.Cmp.IsAssignment()
		}
	}
	if def == nil || def.String() != "relu(g * p) * w" {
		t.Errorf("def = %v", def)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, src := range []string{ssspSrc, pagerankSrc, adsorptionSrc} {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("first parse: %v", err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip mismatch:\n%s\n---\n%s", p1, p2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // expected substring of the error
	}{
		{``, "empty program"},
		{`sssp(X,d)`, "expected ':-'"}, // missing body and period... lexer hits EOF via expect
		{`sssp(X d) :- a(X).`, "expected ',' or ')'"},
		{`sssp(X,d) :- a(X),.`, "expected expression"},
		{`sssp(X,d) :- a(X); {bogus[Δa] < 1}.`, "unknown aggregate"},
		{`sssp(X,d) :- a(X), relu(x,y) = 1.`, "wants 1 args"},
		{`sssp(X,d) :- {sum[Δa] < 1}.`, "no body"},
		{`sssp(X,d) :- a(X); {sum[Δa] < 1}; {sum[Δa] < 2}.`, "duplicate termination"},
		{`x(a,b) :- y(a), a ! b.`, "expected '!='"},
		{`x(_bad) :- y(a).`, "may not start with '_'"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.frag)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("a(X) :- b(X).\nc(Y) :- d(Y,.\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:") {
		t.Errorf("error should point at line 2: %q", err)
	}
}

func TestMiddleDotMultiplication(t *testing.T) {
	r, err := ParseRule(`rank(i+1,Y,sum[ry]) :- rank(i,X,rx), edge(X,Y), degree(X,d), ry = 0.85 · rx / d.`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Head.Name != "rank" {
		t.Error("parse failed")
	}
}
