// Command plcheck runs PowerLog's automatic MRA condition checker on
// recursive aggregate Datalog programs — the paper's Table 1 in CLI form.
//
// Usage:
//
//	plcheck -all                 # check the fourteen catalogue programs
//	plcheck -rewrite program.dl  # check one file, print the incremental form
package main

import (
	"flag"
	"fmt"
	"os"

	"powerlog"
	"powerlog/internal/bench"
	"powerlog/internal/progs"
)

func main() {
	all := flag.Bool("all", false, "check the built-in Table-1 catalogue")
	table := flag.Bool("table", false, "with -all: print the compact Table-1 summary instead of full reports")
	doRewrite := flag.Bool("rewrite", false, "also print the incremental (monotonic) form for satisfying programs")
	smtlib := flag.Bool("smtlib", false, "also print the Property-2 verification condition as SMT-LIB 2 (paper Figure 4)")
	flag.Parse()
	emitSMT = *smtlib

	switch {
	case *all && *table:
		if err := bench.Table1(os.Stdout); err != nil {
			fail(err)
		}
	case *all:
		for _, p := range progs.Catalog() {
			fmt.Printf("== %s ==\n", p.Name)
			if p.Notes != "" {
				fmt.Printf("note: %s\n", p.Notes)
			}
			checkOne(p.Source, *doRewrite)
			fmt.Println()
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		checkOne(string(src), *doRewrite)
	default:
		fmt.Fprintln(os.Stderr, "usage: plcheck -all [-table] | plcheck [-rewrite] program.dl")
		os.Exit(2)
	}
}

var emitSMT bool

func checkOne(src string, doRewrite bool) {
	prog, err := powerlog.Parse(src)
	if err != nil {
		fail(err)
	}
	rep := prog.Check()
	fmt.Print(rep)
	if emitSMT {
		if text, err := prog.SMTLIB(); err == nil {
			fmt.Println("-- SMT-LIB 2 (paper Figure 4 encoding) --")
			fmt.Print(text)
		} else {
			fmt.Printf("-- no SMT-LIB encoding: %v --\n", err)
		}
	}
	if doRewrite && rep.Satisfied {
		text, err := prog.Rewrite()
		if err != nil {
			fail(err)
		}
		fmt.Println("-- incremental form --")
		fmt.Print(text)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "plcheck:", err)
	os.Exit(1)
}
