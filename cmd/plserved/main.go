// Command plserved is the multi-tenant serving front end: a long-lived
// HTTP server that loads dataset shards once, keeps a pool of parked
// engine sessions per (dataset, program, mode), and serves fixpoint
// queries, wait-free point lookups, and incremental mutations with
// per-tenant admission control and Prometheus metrics.
//
// Usage:
//
//	plserved -listen :8080
//	plserved -listen :8080 -workers 8 -rate 100 -fixpoints 4
//
//	curl -d '{"tenant":"t1","dataset":"tiny-chain","algo":"SSSP"}' \
//	     localhost:8080/v1/query
//	curl 'localhost:8080/v1/result?dataset=tiny-chain&algo=SSSP&mode=unified&key=7'
//	curl -d '{"tenant":"t1","dataset":"tiny-chain","algo":"SSSP","mode":"unified",
//	          "inserts":[{"src":0,"dst":9,"w":1.5}]}' localhost:8080/v1/mutate
//	curl localhost:8080/metrics
//
// On SIGTERM/SIGINT the server drains gracefully: it stops accepting
// connections, lets in-flight responses finish streaming (bounded by
// -drain), then closes every pooled session, each of which waits out
// its in-flight fixpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powerlog/internal/server"
)

func main() {
	listen := flag.String("listen", ":8080", "address to serve HTTP on")
	workers := flag.Int("workers", 4, "worker shards per engine session")
	rate := flag.Float64("rate", 50, "per-tenant admission rate (requests/second)")
	burst := flag.Float64("burst", 0, "per-tenant token-bucket capacity (0 = 2x rate)")
	fixpoints := flag.Int("fixpoints", 2, "concurrent fixpoint cap across all tenants")
	budget := flag.Duration("budget", 30*time.Second, "default per-request wall budget")
	maxBudget := flag.Duration("maxbudget", 2*time.Minute, "ceiling on client-requested budgets")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight responses")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:       *workers,
		Rate:          *rate,
		Burst:         *burst,
		MaxFixpoints:  *fixpoints,
		DefaultBudget: *budget,
		MaxBudget:     *maxBudget,
	})
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("plserved: listening on %s (workers=%d rate=%g fixpoints=%d)",
			*listen, *workers, *rate, *fixpoints)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("plserved: %v; draining (deadline %v)", sig, *drain)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "plserved: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("plserved: shutdown: %v (closing anyway)", err)
	}
	if err := srv.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "plserved: drain: %v\n", err)
		os.Exit(1)
	}
	log.Printf("plserved: drained")
}
