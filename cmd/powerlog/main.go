// Command powerlog checks and executes a recursive aggregate Datalog
// program, the paper's Figure-2 pipeline as a CLI: parse → analyse →
// condition-check → (MRA on the unified engine | naive on the sync
// engine) → results.
//
// Usage:
//
//	powerlog -graph edges.tsv program.dl
//	powerlog -builtin SSSP -gen LiveJ -mode sync-async -workers 8
//	powerlog selfcontained.dl   # programs with inline edge facts
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"powerlog"
	"powerlog/internal/analyzer"
	"powerlog/internal/compiler"
	"powerlog/internal/gen"
	"powerlog/internal/parser"
)

var modeNames = map[string]powerlog.Mode{
	"naive":      powerlog.ModeNaiveSync,
	"sync":       powerlog.ModeSync,
	"async":      powerlog.ModeAsync,
	"sync-async": powerlog.ModeSyncAsync,
	"aap":        powerlog.ModeAAP,
	"ssp":        powerlog.ModeSSP,
}

func main() {
	graphPath := flag.String("graph", "", "edge-list TSV (src dst [weight]) registered under the program's join predicate")
	genName := flag.String("gen", "", "synthetic dataset name instead of -graph (Flickr, LiveJ, Orkut, Web, Wiki, Arabic)")
	builtin := flag.String("builtin", "", "run a catalogue program (SSSP, CC, PageRank, ...) instead of a file")
	modeName := flag.String("mode", "sync-async", "engine: naive, sync, async, sync-async, aap, ssp")
	workers := flag.Int("workers", 4, "worker shards")
	weighted := flag.Bool("weighted", true, "interpret the third TSV column as edge weight")
	top := flag.Int("top", 10, "print the top-N result rows")
	replMode := flag.Bool("repl", false, "start the interactive shell")
	flag.Parse()

	if *replMode {
		runREPL(*workers)
		return
	}

	mode, ok := modeNames[*modeName]
	if !ok {
		fail(fmt.Errorf("unknown mode %q", *modeName))
	}

	src, err := programSource(*builtin)
	if err != nil {
		fail(err)
	}

	prog, err := powerlog.Parse(src)
	if err != nil {
		fail(err)
	}
	rep := prog.Check()
	fmt.Print(rep)

	db := powerlog.NewDatabase()
	if err := loadData(db, src, *graphPath, *genName, *weighted); err != nil {
		fail(err)
	}
	plan, err := prog.Compile(db)
	if err != nil {
		fail(err)
	}
	res, err := powerlog.Run(plan, powerlog.Options{Mode: mode, Workers: *workers})
	if err != nil {
		fail(err)
	}
	fmt.Println(powerlog.Summary(res))
	printTop(res, *top)
}

func programSource(builtin string) (string, error) {
	if builtin != "" {
		switch strings.ToLower(builtin) {
		case "sssp":
			return powerlog.Programs.SSSP, nil
		case "cc":
			return powerlog.Programs.CC, nil
		case "pagerank":
			return powerlog.Programs.PageRank, nil
		case "katz":
			return powerlog.Programs.Katz, nil
		case "viterbi":
			return powerlog.Programs.Viterbi, nil
		case "apsp":
			return powerlog.Programs.APSP, nil
		default:
			return "", fmt.Errorf("no builtin %q (try SSSP, CC, PageRank, Katz, Viterbi, APSP)", builtin)
		}
	}
	if flag.NArg() != 1 {
		return "", fmt.Errorf("usage: powerlog [-graph edges.tsv | -gen NAME | -builtin NAME] [program.dl]")
	}
	b, err := os.ReadFile(flag.Arg(0))
	return string(b), err
}

// loadData registers the propagation graph under the program's join
// predicate: from a TSV file, a synthetic dataset, or inline facts.
func loadData(db *powerlog.Database, src, graphPath, genName string, weighted bool) error {
	pred, info, err := joinPredicate(src)
	if err != nil {
		return err
	}
	switch {
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := powerlog.LoadGraphTSV(f, weighted)
		if err != nil {
			return err
		}
		db.SetGraph(pred, g)
	case genName != "":
		d, err := gen.DatasetByName(genName)
		if err != nil {
			return err
		}
		db.SetGraph(pred, d.Build(weighted))
	default:
		g, err := compiler.GraphFromFacts(info, pred, 0)
		if err != nil {
			return fmt.Errorf("no -graph/-gen given and no usable inline facts: %w", err)
		}
		db.SetGraph(pred, g)
	}
	return nil
}

// joinPredicate finds the edge-like predicate of the recursive body (the
// one connecting the recursive key to the head key).
func joinPredicate(src string) (string, *analyzer.Info, error) {
	tree, err := parser.Parse(src)
	if err != nil {
		return "", nil, err
	}
	info, err := analyzer.Analyze(tree)
	if err != nil {
		return "", nil, err
	}
	name, err := info.JoinPredicate()
	if err != nil {
		return "", nil, err
	}
	return name, info, nil
}

func printTop(res *powerlog.Result, n int) {
	type kv struct {
		k int64
		v float64
	}
	rows := make([]kv, 0, len(res.Values))
	for k, v := range res.Values {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	if n > len(rows) {
		n = len(rows)
	}
	fmt.Printf("top %d of %d keys:\n", n, len(rows))
	for _, r := range rows[:n] {
		fmt.Printf("  %8d  %g\n", r.k, r.v)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "powerlog:", err)
	os.Exit(1)
}
