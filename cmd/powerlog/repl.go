package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"powerlog"
	"powerlog/internal/gen"
)

// repl is an interactive Datalog shell: accumulate rules, check them,
// run them against a loaded graph. Started with `powerlog -repl`.
type repl struct {
	in      *bufio.Scanner
	out     io.Writer
	program []string
	graph   *powerlog.Graph
	mode    powerlog.Mode
	workers int
}

func runREPL(workers int) {
	r := &repl{
		in:      bufio.NewScanner(os.Stdin),
		out:     os.Stdout,
		mode:    powerlog.ModeSyncAsync,
		workers: workers,
	}
	fmt.Fprintln(r.out, "PowerLog interactive shell — :help for commands, Datalog rules otherwise")
	for {
		fmt.Fprint(r.out, "powerlog> ")
		if !r.in.Scan() {
			fmt.Fprintln(r.out)
			return
		}
		line := strings.TrimSpace(r.in.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, ":") {
			r.program = append(r.program, line)
			continue
		}
		if !r.command(line) {
			return
		}
	}
}

// command handles one ":" directive; returns false to quit.
func (r *repl) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":help":
		fmt.Fprint(r.out, `commands:
  :load gen NAME [weighted]   load a synthetic dataset (Flickr, LiveJ, ...)
  :load file PATH [weighted]  load an edge-list TSV
  :mode NAME                  naive | sync | async | sync-async | aap
  :show                       print the accumulated program
  :check                      run the MRA condition checker
  :rewrite                    print the incremental form
  :smtlib                     print the Figure-4 SMT-LIB encoding
  :run                        compile and execute, print the top results
  :clear                      discard the program buffer
  :quit                       exit
anything else is appended to the program buffer (end rules with '.')
`)
	case ":quit", ":q", ":exit":
		return false
	case ":clear":
		r.program = nil
		fmt.Fprintln(r.out, "program cleared")
	case ":show":
		fmt.Fprintln(r.out, strings.Join(r.program, "\n"))
	case ":mode":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: :mode naive|sync|async|sync-async|aap")
			break
		}
		m, ok := modeNames[fields[1]]
		if !ok {
			fmt.Fprintf(r.out, "unknown mode %q\n", fields[1])
			break
		}
		r.mode = m
	case ":load":
		r.load(fields[1:])
	case ":check":
		if prog := r.parse(); prog != nil {
			fmt.Fprint(r.out, prog.Check())
		}
	case ":rewrite":
		if prog := r.parse(); prog != nil {
			text, err := prog.Rewrite()
			if err != nil {
				fmt.Fprintln(r.out, "rewrite:", err)
				break
			}
			fmt.Fprint(r.out, text)
		}
	case ":smtlib":
		if prog := r.parse(); prog != nil {
			text, err := prog.SMTLIB()
			if err != nil {
				fmt.Fprintln(r.out, "smtlib:", err)
				break
			}
			fmt.Fprint(r.out, text)
		}
	case ":run":
		r.run()
	default:
		fmt.Fprintf(r.out, "unknown command %s (:help)\n", fields[0])
	}
	return true
}

func (r *repl) parse() *powerlog.Program {
	src := strings.Join(r.program, "\n")
	prog, err := powerlog.Parse(src)
	if err != nil {
		fmt.Fprintln(r.out, "parse:", err)
		return nil
	}
	return prog
}

func (r *repl) load(args []string) {
	if len(args) < 2 {
		fmt.Fprintln(r.out, "usage: :load gen NAME [weighted] | :load file PATH [weighted]")
		return
	}
	weighted := len(args) >= 3 && args[2] == "weighted"
	switch args[0] {
	case "gen":
		d, err := gen.DatasetByName(args[1])
		if err != nil {
			fmt.Fprintln(r.out, err)
			return
		}
		r.graph = d.Build(weighted)
	case "file":
		f, err := os.Open(args[1])
		if err != nil {
			fmt.Fprintln(r.out, err)
			return
		}
		defer f.Close()
		g, err := powerlog.LoadGraphTSV(f, weighted)
		if err != nil {
			fmt.Fprintln(r.out, err)
			return
		}
		r.graph = g
	default:
		fmt.Fprintln(r.out, "usage: :load gen NAME | :load file PATH")
		return
	}
	fmt.Fprintf(r.out, "loaded graph: %d vertices, %d edges, weighted=%v\n",
		r.graph.NumVertices(), r.graph.NumEdges(), r.graph.Weighted())
}

func (r *repl) run() {
	prog := r.parse()
	if prog == nil {
		return
	}
	src := strings.Join(r.program, "\n")
	db := powerlog.NewDatabase()
	if r.graph != nil {
		pred, _, err := joinPredicate(src)
		if err != nil {
			fmt.Fprintln(r.out, err)
			return
		}
		db.SetGraph(pred, r.graph)
	} else if err := loadData(db, src, "", "", true); err != nil {
		fmt.Fprintln(r.out, "no graph loaded and no inline facts:", err)
		return
	}
	plan, err := prog.Compile(db)
	if err != nil {
		fmt.Fprintln(r.out, "compile:", err)
		return
	}
	res, err := powerlog.Run(plan, powerlog.Options{Mode: r.mode, Workers: r.workers})
	if err != nil {
		fmt.Fprintln(r.out, "run:", err)
		return
	}
	fmt.Fprintln(r.out, powerlog.Summary(res))
	printTop(res, 10)
}
