// Command plgen emits the synthetic Table-2 stand-in datasets (or custom
// generator output) as TSV edge lists consumable by the powerlog CLI.
//
// Usage:
//
//	plgen -dataset LiveJ -weighted -out livej.tsv
//	plgen -kind rmat -scale 14 -edges 200000 -seed 7 -out g.tsv
//	plgen -kind uniform -n 10000 -edges 50000 -churn 5 -churnfrac 0.01 -out g.tsv
//
// -churn N additionally emits a seeded, reproducible mutation stream of
// N batches against the generated graph (for session-churn benchmarks):
// "- src dst" delete lines and "+ src dst w" insert lines, grouped under
// "# batch k" headers, written to <out>.churn (or stdout after the edge
// list when -out is unset).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"powerlog/internal/gen"
	"powerlog/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "", "Table-2 stand-in name (Flickr, LiveJ, Orkut, Web, Wiki, Arabic)")
	kind := flag.String("kind", "", "custom generator: rmat, uniform, chain, dag, trellis")
	scale := flag.Int("scale", 12, "rmat: log2 vertex count")
	n := flag.Int("n", 10000, "uniform/chain/dag: vertex count")
	m := flag.Int("edges", 50000, "edge count target")
	maxW := flag.Float64("maxw", 0, "max edge weight (0 = unweighted)")
	seed := flag.Int64("seed", 1, "generator seed")
	weighted := flag.Bool("weighted", false, "dataset: build the weighted variant")
	out := flag.String("out", "", "output path (default stdout)")
	stats := flag.Bool("stats", false, "print graph statistics instead of edges")
	churn := flag.Int("churn", 0, "also emit a mutation stream of this many batches")
	churnFrac := flag.Float64("churnfrac", 0.01, "churn: fraction of edges touched per batch")
	churnKind := flag.String("churnkind", "mixed", "churn batch shape: insert, delete, or mixed")
	flag.Parse()

	var g *graph.Graph
	switch {
	case *dataset != "":
		d, err := gen.DatasetByName(*dataset)
		if err != nil {
			fail(err)
		}
		g = d.Build(*weighted)
	case *kind != "":
		switch *kind {
		case "rmat":
			g = gen.RMAT(*scale, *m, *maxW, *seed)
		case "uniform":
			g = gen.Uniform(*n, *m, *maxW, *seed)
		case "chain":
			g = gen.Chain(*n, *m, *maxW, *seed)
		case "dag":
			g = gen.DAG(*n, float64(*m)/float64(*n), 50, *maxW, *seed)
		case "trellis":
			g = gen.Trellis(*n, *m, *seed)
		default:
			fail(fmt.Errorf("unknown kind %q", *kind))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: plgen -dataset NAME | -kind KIND [flags]")
		os.Exit(2)
	}

	if *stats {
		fmt.Printf("|V| = %d\n|E| = %d\nweighted = %v\n", g.NumVertices(), g.NumEdges(), g.Weighted())
		fmt.Printf("max out-degree = %d\n", g.MaxDegree())
		fmt.Printf("degree Gini = %.3f\n", gen.GiniOutDegree(g))
		fmt.Printf("approx diameter >= %d\n", gen.ApproxDiameter(g, 4, 1))
		fmt.Printf("spectral radius ~= %.2f\n", gen.SpectralRadiusEstimate(g, 12))
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# |V|=%d |E|=%d weighted=%v\n", g.NumVertices(), g.NumEdges(), g.Weighted())
	if err := bw.Flush(); err != nil {
		fail(err)
	}
	if err := g.WriteTSV(w); err != nil {
		fail(err)
	}

	if *churn > 0 {
		batches, _, err := gen.ChurnStream(g, *churnKind, *churnFrac, *churn, *seed)
		if err != nil {
			fail(err)
		}
		cw := w
		if *out != "" {
			f, err := os.Create(*out + ".churn")
			if err != nil {
				fail(err)
			}
			defer f.Close()
			cw = f
		}
		if err := gen.WriteChurnTSV(cw, batches); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "plgen:", err)
	os.Exit(1)
}
