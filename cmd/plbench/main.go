// Command plbench regenerates the paper's evaluation tables and figures
// on the synthetic Table-2 stand-in datasets.
//
// Usage:
//
//	plbench -exp table1                 # condition-check catalogue
//	plbench -exp fig10 -workers 8       # factor analysis
//	plbench -exp policymetrics -smoke   # per-policy counters, tiny dataset
//	plbench -exp all                    # everything (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"powerlog/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id: table1, table2, fig1, fig9, fig10, fig11, ablation, ssp, recovery, rejoin, policymetrics, cores, churn, serve, or all")
	workers := flag.Int("workers", 4, "worker shards per engine run")
	cores := flag.Int("cores", 0, "per-worker scan parallelism (0 = min(GOMAXPROCS, 8); 1 = serial pass)")
	maxWall := flag.Duration("maxwall", 5*time.Minute, "per-run wall-clock cap")
	staleness := flag.Int("staleness", 0, "MRA+SSP superstep bound (0 = runtime default)")
	faults := flag.String("faults", "", `fault-injection spec applied to every run, e.g. "seed=42,sendfail=0.1,stall=5:300us"`)
	smoke := flag.Bool("smoke", false, "shrink the experiment to its tiny-dataset variant (CI smoke runs)")
	flag.Parse()

	if *exp == "" {
		fmt.Fprintf(os.Stderr, "usage: plbench -exp {%v|all}\n", bench.Experiments)
		os.Exit(2)
	}
	cfg := bench.RunConfig{Workers: *workers, Cores: *cores, MaxWall: *maxWall, Staleness: *staleness, Faults: *faults, Smoke: *smoke}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments
	}
	for _, id := range ids {
		start := time.Now()
		if err := bench.RunExperiment(id, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "plbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
