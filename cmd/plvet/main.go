// Command plvet runs the repo-local static analyzers of internal/lint
// over the module and prints findings as file:line:col diagnostics,
// exiting non-zero when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/plvet ./...                  # whole module
//	go run ./cmd/plvet ./internal/transport   # one subtree
//	go run ./cmd/plvet -only recycle,shadow ./...
//	go run ./cmd/plvet -json ./... > plvet.json
//	go run ./cmd/plvet -list
//
// The whole module is always loaded and type-checked (analyzers need
// cross-package types either way); patterns only filter which packages'
// findings are reported.
//
// A finding is silenced in place with a suppression comment naming the
// analyzer and a reason:
//
//	conn.Close() //plvet:ignore lockblock shutdown path, lock ordering is documented
//
// Suppressed findings are counted on stderr but do not fail the run;
// a malformed directive or one naming an unknown analyzer is itself a
// finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"powerlog/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout (for CI artifacts)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: plvet [-only a,b] [-json] [-list] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	res := lint.Run(mod, analyzers)
	findings := filterByPatterns(res.Findings, flag.Args(), cwd)
	suppressed := filterByPatterns(res.Suppressed, flag.Args(), cwd)

	relativize := func(fs []lint.Finding) {
		// Report paths relative to the invocation directory, like go vet.
		for i := range fs {
			if rel, err := filepath.Rel(cwd, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				fs[i].Pos.Filename = rel
			}
		}
	}
	relativize(findings)
	relativize(suppressed)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(jsonReport(findings, suppressed)); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if n := len(suppressed); n > 0 {
		fmt.Fprintf(os.Stderr, "plvet: %d finding(s) suppressed by //plvet:ignore\n", n)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "plvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the stable wire shape of one diagnostic; the text form
// (file:line:col) stays the human-facing format.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func jsonReport(findings, suppressed []lint.Finding) map[string]any {
	conv := func(fs []lint.Finding) []jsonFinding {
		out := make([]jsonFinding, 0, len(fs)) // empty slice, not null, when clean
		for _, f := range fs {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     filepath.ToSlash(f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		return out
	}
	return map[string]any{
		"findings":   conv(findings),
		"suppressed": conv(suppressed),
	}
}

// filterByPatterns keeps findings under the directories named by
// go-style patterns ("./...", "./internal/transport", ...). No patterns
// (or any "./..." from the module root) means everything.
func filterByPatterns(findings []lint.Finding, patterns []string, cwd string) []lint.Finding {
	if len(patterns) == 0 {
		return findings
	}
	type scope struct {
		dir       string
		recursive bool
	}
	var scopes []scope
	for _, p := range patterns {
		recursive := false
		if strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(p, "/...")
		} else if p == "..." {
			recursive = true
			p = "."
		}
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		scopes = append(scopes, scope{dir: filepath.Clean(dir), recursive: recursive})
	}
	var out []lint.Finding
	for _, f := range findings {
		dir := filepath.Dir(f.Pos.Filename)
		for _, s := range scopes {
			if dir == s.dir || (s.recursive && strings.HasPrefix(dir, s.dir+string(filepath.Separator))) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "plvet: %v\n", err)
	os.Exit(1)
}
