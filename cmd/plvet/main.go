// Command plvet runs the repo-local static analyzers of internal/lint
// over the module and prints findings as file:line:col diagnostics,
// exiting non-zero when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/plvet ./...                  # whole module
//	go run ./cmd/plvet ./internal/transport   # one subtree
//	go run ./cmd/plvet -only recycle,shadow ./...
//	go run ./cmd/plvet -list
//
// The whole module is always loaded and type-checked (analyzers need
// cross-package types either way); patterns only filter which packages'
// findings are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"powerlog/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: plvet [-only a,b] [-list] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	findings := lint.Run(mod, analyzers)
	findings = filterByPatterns(findings, flag.Args(), cwd)

	for _, f := range findings {
		// Report paths relative to the invocation directory, like go vet.
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "plvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// filterByPatterns keeps findings under the directories named by
// go-style patterns ("./...", "./internal/transport", ...). No patterns
// (or any "./..." from the module root) means everything.
func filterByPatterns(findings []lint.Finding, patterns []string, cwd string) []lint.Finding {
	if len(patterns) == 0 {
		return findings
	}
	type scope struct {
		dir       string
		recursive bool
	}
	var scopes []scope
	for _, p := range patterns {
		recursive := false
		if strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(p, "/...")
		} else if p == "..." {
			recursive = true
			p = "."
		}
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		scopes = append(scopes, scope{dir: filepath.Clean(dir), recursive: recursive})
	}
	var out []lint.Finding
	for _, f := range findings {
		dir := filepath.Dir(f.Pos.Filename)
		for _, s := range scopes {
			if dir == s.dir || (s.recursive && strings.HasPrefix(dir, s.dir+string(filepath.Separator))) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "plvet: %v\n", err)
	os.Exit(1)
}
