// Recommendation: Adsorption label propagation (the paper's Program 4).
//
// Adsorption powers YouTube-style video suggestion (Baluja et al.,
// WWW'08): labels injected at a few seed videos diffuse through the
// co-view graph; a video's final score says how strongly it relates to
// the seeds. The program is non-monotonic in its original form, passes
// the MRA check, and runs incrementally.
//
//	go run ./examples/recommendation
package main

import (
	"fmt"
	"log"
	"sort"

	"powerlog"
	"powerlog/internal/gen"
)

const program = `
r1. I(x,i)   :- seed(x,i).
r2. L(0,x,l) :- node(x), l = 0.
r3. L(j+1,y,sum[a1]) :- I(y,i), pi(y,p2), a1 = i * p2;
                     :- L(j,x,a), A(x,y,w), pc(x,p), a1 = 0.7 * a * w * p;
                     {sum[Δa1] < 0.000001}.
`

func main() {
	// Co-view graph: 2000 videos; edge weights are co-view affinities,
	// normalised so each video's outgoing affinity sums to ≤ 1.
	g := gen.Uniform(2000, 16000, 1, 77)
	gen.NormalizeWeightsByOut(g, 1)
	n := g.NumVertices()

	prog, err := powerlog.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	rep := prog.Check()
	fmt.Print(rep)
	if !rep.Satisfied {
		log.Fatal("adsorption must satisfy the MRA conditions")
	}

	db := powerlog.NewDatabase()
	db.SetGraph("A", g)

	// The user watched (and loved) three videos: inject label mass there.
	db.AddRelation(sparseRelation("seed", map[int64]float64{17: 1.0, 256: 0.8, 1311: 0.9}))

	// Injection / continuation probabilities per video.
	pi := gen.VertexAttr(n, 0.2, 0.4, 1)
	pc := gen.VertexAttr(n, 0.5, 0.9, 2)
	db.AddRelation(columnRelation("pi", pi))
	db.AddRelation(columnRelation("pc", pc))

	plan, err := prog.Compile(db)
	if err != nil {
		log.Fatal(err)
	}
	res, err := powerlog.Run(plan, powerlog.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", powerlog.Summary(res))

	type rec struct {
		video int64
		score float64
	}
	var recs []rec
	watched := map[int64]bool{17: true, 256: true, 1311: true}
	for k, v := range res.Values {
		if !watched[k] {
			recs = append(recs, rec{k, v})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
	fmt.Println("\nrecommended videos (label mass diffused from the watch history):")
	for _, r := range recs[:10] {
		fmt.Printf("  video %4d  score %.5f\n", r.video, r.score)
	}
}

// sparseRelation builds a binary relation from a map.
func sparseRelation(name string, vals map[int64]float64) *powerlog.Relation {
	keys := make([]int64, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	r := powerlog.NewRelation(name, 2)
	for _, k := range keys {
		r.Add(float64(k), vals[k])
	}
	return r
}

// columnRelation builds a dense per-vertex relation from a column.
func columnRelation(name string, col []float64) *powerlog.Relation {
	r := powerlog.NewRelation(name, 2)
	for v, x := range col {
		r.Add(float64(v), x)
	}
	return r
}
