// PageRank: the paper's flagship non-monotonic program.
//
// The original PageRank (Program 2) replaces scores each iteration, so
// classic semi-naive evaluation does not apply and systems like SociaLite
// fall back to naive evaluation. PowerLog's checker proves the MRA
// conditions hold, converts the program to its incremental form
// (Program 2.b) automatically, and runs it on the unified sync-async
// engine. This example ranks a synthetic web crawl and shows both the
// conversion and the naive-vs-MRA gap.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"powerlog"
	"powerlog/internal/gen"
)

func main() {
	// A power-law "web crawl": 4096 pages, ~60k links.
	g := gen.RMAT(12, 60000, 0, 2026)
	fmt.Printf("crawl: %d pages, %d links, max out-degree %d\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	prog, err := powerlog.Parse(powerlog.Programs.PageRank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog.Check())

	// The automatic non-monotonic → incremental conversion (Program 2.b).
	incr, err := prog.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nincremental form produced by the rewriter:")
	fmt.Print(incr)

	run := func(mode powerlog.Mode) *powerlog.Result {
		db := powerlog.NewDatabase()
		db.SetGraph("edge", g)
		plan, err := prog.Compile(db)
		if err != nil {
			log.Fatal(err)
		}
		res, err := powerlog.RunUnchecked(plan, powerlog.Options{Mode: mode, Workers: 4, MaxWall: 2 * time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	naive := run(powerlog.ModeNaiveSync)
	mra := run(powerlog.ModeSyncAsync)
	fmt.Printf("\nnaive evaluation (SociaLite-style): %v\n", naive.Elapsed)
	fmt.Printf("MRA + unified sync-async engine:    %v  (%.1fx)\n",
		mra.Elapsed, naive.Elapsed.Seconds()/mra.Elapsed.Seconds())

	type page struct {
		id   int64
		rank float64
	}
	pages := make([]page, 0, len(mra.Values))
	for k, v := range mra.Values {
		pages = append(pages, page{k, v})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].rank > pages[j].rank })
	fmt.Println("\ntop 10 pages:")
	for _, p := range pages[:10] {
		fmt.Printf("  page %4d  rank %.4f\n", p.id, p.rank)
	}
}
