// Quickstart: two Datalog rules compute single-source shortest paths.
//
// The paper's opening example (Program 1): rule r1 sets the source
// distance; rule r2 recursively relaxes edges under a min aggregate.
// PowerLog's checker proves the program satisfies the MRA conditions, so
// it runs incrementally and asynchronously on the unified engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"powerlog"
)

const program = `
r1. sssp(X,d) :- X=0, d=0.
r2. sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
`

func main() {
	// A small road network: vertices are junctions, weights are minutes.
	edges := []powerlog.Edge{
		{Src: 0, Dst: 1, W: 7}, {Src: 0, Dst: 2, W: 9}, {Src: 0, Dst: 5, W: 14},
		{Src: 1, Dst: 2, W: 10}, {Src: 1, Dst: 3, W: 15},
		{Src: 2, Dst: 3, W: 11}, {Src: 2, Dst: 5, W: 2},
		{Src: 3, Dst: 4, W: 6},
		{Src: 5, Dst: 4, W: 9},
	}
	g, err := powerlog.NewGraph(6, edges, true)
	if err != nil {
		log.Fatal(err)
	}

	prog, err := powerlog.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	// The automatic condition checker (the paper's Z3 step, §3.3).
	fmt.Print(prog.Check())

	db := powerlog.NewDatabase()
	db.SetGraph("edge", g)
	plan, err := prog.Compile(db)
	if err != nil {
		log.Fatal(err)
	}

	res, err := powerlog.Run(plan, powerlog.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nshortest distances from junction 0:")
	keys := make([]int64, 0, len(res.Values))
	for k := range res.Values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Printf("  junction %d: %g minutes\n", k, res.Values[k])
	}
	fmt.Printf("\n%s\n", powerlog.Summary(res))
}
