// Checker: walk the paper's Table-1 catalogue through the automatic MRA
// condition checker, show a concrete counterexample for a rejected
// program (GCN-Forward, the paper's own §6.1 example), and print the
// automatic non-monotonic → incremental conversion for PageRank.
//
//	go run ./examples/checker
package main

import (
	"fmt"
	"log"

	"powerlog"
	"powerlog/internal/progs"
)

func main() {
	fmt.Println("== Table 1: automatic MRA condition check ==")
	for _, entry := range progs.Catalog() {
		rep, err := powerlog.CheckSource(entry.Source)
		if err != nil {
			log.Fatalf("%s: %v", entry.Name, err)
		}
		status := "MRA"
		if !rep.Satisfied {
			status = "naive fallback"
		}
		fmt.Printf("  %-26s %-6s → %s\n", entry.Name, rep.Agg, status)
	}

	fmt.Println("\n== Why GCN-Forward is rejected ==")
	gcn, err := powerlog.Parse(powerlog.Programs.GCNForward)
	if err != nil {
		log.Fatal(err)
	}
	rep := gcn.Check()
	fmt.Printf("P2 verdict: %v\n", rep.P2.Verdict)
	fmt.Printf("counterexample model: %v\n", rep.P2.Witness)
	fmt.Printf("reason: %s\n", rep.P2.Reason)

	fmt.Println("\n== PageRank: automatic conversion to the incremental form ==")
	pr, err := powerlog.Parse(powerlog.Programs.PageRank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pr.Check())
	incr, err := pr.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nProgram 2.b equivalent produced by the rewriter:")
	fmt.Print(incr)
}
