// Session: a long-lived engine over a live graph (DESIGN.md §10).
//
// Open computes the initial SSSP fixpoint and parks the worker fleet;
// each Apply folds a batch of edge insertions and deletions into the
// EDB and re-converges incrementally — the warm tables absorb the
// mutation's delta instead of recomputing from scratch. An insert is a
// fresh delta (sound by the paper's Theorem 3 replay tolerance); a
// delete invalidates the over-approximate cone of keys the edge might
// have supported and re-derives it.
//
//	go run ./examples/session
package main

import (
	"fmt"
	"log"

	"powerlog"
)

const program = `
r1. sssp(X,d) :- X=0, d=0.
r2. sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
`

func main() {
	g, err := powerlog.NewGraph(4, []powerlog.Edge{
		{Src: 0, Dst: 1, W: 4}, {Src: 1, Dst: 2, W: 3}, {Src: 0, Dst: 2, W: 9},
	}, true)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := powerlog.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	db := powerlog.NewDatabase()
	db.SetGraph("edge", g)
	plan, err := prog.Compile(db)
	if err != nil {
		log.Fatal(err)
	}

	sess, err := powerlog.Open(plan, powerlog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Println("initial:      ", sess.Result().Values) // map[0:0 1:4 2:7]

	res, err := sess.Apply(powerlog.Mutation{
		Inserts: []powerlog.Edge{{Src: 2, Dst: 3, W: 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after insert: ", res.Values) // map[0:0 1:4 2:7 3:8]

	res, err = sess.Apply(powerlog.Mutation{
		Deletes: []powerlog.Edge{{Src: 1, Dst: 2}}, // drops every 1→2 edge
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after delete: ", res.Values) // map[0:0 1:4 2:9 3:10]
}
