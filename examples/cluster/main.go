// Cluster: run PowerLog across multiple OS processes over TCP — the
// multi-node deployment path (the original system used OpenMPI on a
// 17-node cluster; this example uses the TCP transport).
//
// Every process compiles the same plan from the same seeded dataset,
// workers own MonoTable shards by key partitioning, and the master runs
// the termination protocol.
//
// Single command demo (spawns the workers and master as child processes):
//
//	go run ./examples/cluster
//
// Manual multi-process form:
//
//	go run ./examples/cluster -role worker -id 0 -addrs host0:7000,host1:7000,host2:7000,master:7000
//	go run ./examples/cluster -role worker -id 1 -addrs ...
//	go run ./examples/cluster -role master -addrs ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"powerlog"
	"powerlog/internal/gen"
)

const workers = 3

func main() {
	role := flag.String("role", "", "worker | master (empty: spawn a full demo cluster)")
	id := flag.Int("id", 0, "worker id (workers 0..n-1)")
	addrs := flag.String("addrs", "", "comma-separated endpoint addresses, workers first then master")
	flag.Parse()

	switch *role {
	case "":
		demo()
	case "worker", "master":
		book := strings.Split(*addrs, ",")
		if len(book) != workers+1 {
			log.Fatalf("need %d addresses, got %d", workers+1, len(book))
		}
		endpointID := *id
		if *role == "master" {
			endpointID = workers
		}
		runEndpoint(endpointID, book)
	default:
		log.Fatalf("unknown role %q", *role)
	}
}

// plan compiles SSSP over the deterministic LiveJ stand-in — every
// process builds the identical plan, like cluster nodes loading the same
// HDFS partition set.
func plan() *powerlog.Plan {
	prog, err := powerlog.Parse(powerlog.Programs.SSSP)
	if err != nil {
		log.Fatal(err)
	}
	db := powerlog.NewDatabase()
	d, err := gen.DatasetByName("LiveJ")
	if err != nil {
		log.Fatal(err)
	}
	db.SetGraph("edge", d.Build(true))
	p, err := prog.Compile(db)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func runEndpoint(id int, book []string) {
	conn, err := powerlog.NewTCPEndpoint(id, workers, book)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	opts := powerlog.Options{Mode: powerlog.ModeSyncAsync, MaxWall: time.Minute}
	if id == workers {
		rounds, converged, err := powerlog.RunMaster(plan(), opts, conn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("master: %d termination-check rounds, converged=%v\n", rounds, converged)
		return
	}
	local, err := powerlog.RunWorker(plan(), opts, conn)
	if err != nil {
		log.Fatal(err)
	}
	// Print a deterministic sample of this shard's results.
	keys := make([]int64, 0, len(local))
	for k := range local {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Printf("worker %d: %d keys in shard; first few:", id, len(local))
	for i, k := range keys {
		if i == 4 {
			break
		}
		fmt.Printf("  sssp(%d)=%g", k, local[k])
	}
	fmt.Println()
}

// demo spawns the whole cluster as child processes on localhost.
func demo() {
	base := 17000 + os.Getpid()%1000
	book := make([]string, workers+1)
	for i := range book {
		book[i] = fmt.Sprintf("127.0.0.1:%d", base+i)
	}
	addrs := strings.Join(book, ",")
	fmt.Printf("spawning %d workers + master on %s\n", workers, addrs)

	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	var procs []*exec.Cmd
	for i := 0; i < workers; i++ {
		procs = append(procs, command(exe, "-role", "worker", "-id", fmt.Sprint(i), "-addrs", addrs))
	}
	procs = append(procs, command(exe, "-role", "master", "-addrs", addrs))
	for _, p := range procs {
		if err := p.Start(); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range procs {
		if err := p.Wait(); err != nil {
			log.Fatalf("child failed: %v", err)
		}
	}
	fmt.Println("cluster run complete")
}

func command(exe string, args ...string) *exec.Cmd {
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd
}
