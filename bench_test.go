// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, at the synthetic Table-2 scale with the emulated cluster
// NIC, plus micro-benchmarks of the engine's hot paths. Regenerate all
// results with:
//
//	go test -bench=. -benchmem ./...
//
// or target a single experiment, e.g.:
//
//	go test -bench=BenchmarkFigure10/PageRank -benchmem .
//
// Shapes (speedup factors, who wins) are the reproduction target;
// absolute times are laptop-scale. See EXPERIMENTS.md.
package powerlog

import (
	"fmt"
	"io"
	"testing"
	"time"

	"powerlog/internal/agg"
	"powerlog/internal/bench"
	"powerlog/internal/checker"
	"powerlog/internal/gen"
	"powerlog/internal/monotable"
	"powerlog/internal/progs"
	"powerlog/internal/runtime"
)

func benchCfg(workers int) bench.RunConfig {
	return bench.RunConfig{Workers: workers, MaxWall: 90 * time.Second}
}

// runWorkload times one (algo, dataset, mode) cell once per b.N.
func runWorkload(b *testing.B, algo, dataset string, mode runtime.Mode) {
	b.Helper()
	d, err := gen.DatasetByName(dataset)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := bench.Prepare(algo, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bench.RunMode(wl, mode, benchCfg(4))
		if err != nil {
			b.Fatal(err)
		}
		if !m.Converged {
			b.Fatalf("%s/%s/%v did not converge within the wall limit", algo, dataset, mode)
		}
		b.ReportMetric(float64(m.Messages), "kv-msgs")
		b.ReportMetric(float64(m.Rounds), "rounds")
	}
}

// BenchmarkTable1 times the automatic condition checker over the whole
// catalogue (the paper's "automated, not manual" contribution).
func BenchmarkTable1ConditionCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range progs.Catalog() {
			rep, _, err := checker.CheckSource(p.Source)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Satisfied != p.ExpectSat {
				b.Fatalf("%s: wrong verdict", p.Name)
			}
		}
	}
}

// BenchmarkTable2 regenerates the dataset registry (graph construction).
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 reproduces the motivation: sync vs async flip winners
// across algorithms and datasets.
func BenchmarkFigure1(b *testing.B) {
	cells := []struct {
		algo, ds string
		mode     runtime.Mode
	}{
		{"SSSP", "LiveJ", runtime.MRASync},
		{"SSSP", "LiveJ", runtime.MRAAsync},
		{"PageRank", "LiveJ", runtime.MRASync},
		{"PageRank", "LiveJ", runtime.MRAAsync},
		{"SSSP", "Wiki", runtime.MRASync},
		{"SSSP", "Wiki", runtime.MRAAsync},
		{"SSSP", "Arabic", runtime.MRASync},
		{"SSSP", "Arabic", runtime.MRAAsync},
	}
	for _, c := range cells {
		b.Run(fmt.Sprintf("%s/%s/%v", c.algo, c.ds, c.mode), func(b *testing.B) {
			runWorkload(b, c.algo, c.ds, c.mode)
		})
	}
}

// figure9Modes mirrors bench.Figure9: the engine configurations modelling
// SociaLite/BigDatalog (sync), Myria (async), and PowerLog per algorithm.
func figure9Modes(algo string) []runtime.Mode {
	switch algo {
	case "CC", "SSSP":
		return []runtime.Mode{runtime.MRASync, runtime.MRAAsync, runtime.MRASyncAsync}
	default:
		return []runtime.Mode{runtime.NaiveSync, runtime.MRASyncAsync}
	}
}

// BenchmarkFigure9 is the overall comparison: six algorithms × six
// datasets × the per-algorithm system grid.
func BenchmarkFigure9(b *testing.B) {
	for _, algo := range bench.Algorithms {
		for _, d := range gen.Datasets() {
			for _, mode := range figure9Modes(algo) {
				b.Run(fmt.Sprintf("%s/%s/%v", algo, d.Name, mode), func(b *testing.B) {
					runWorkload(b, algo, d.Name, mode)
				})
			}
		}
	}
}

// BenchmarkFigure10 is the factor analysis on the three large datasets:
// Naive+Sync vs MRA+Sync vs MRA+Async vs MRA+SyncAsync.
func BenchmarkFigure10(b *testing.B) {
	modes := []runtime.Mode{runtime.NaiveSync, runtime.MRASync, runtime.MRAAsync, runtime.MRASyncAsync}
	for _, algo := range bench.Algorithms {
		for _, ds := range []string{"Wiki", "Web", "Arabic"} {
			for _, mode := range modes {
				b.Run(fmt.Sprintf("%s/%s/%v", algo, ds, mode), func(b *testing.B) {
					runWorkload(b, algo, ds, mode)
				})
			}
		}
	}
}

// BenchmarkFigure10Comparators times the hand-coded graph-system
// stand-ins (PowerGraph / Maiter / Prom) on the same workloads.
func BenchmarkFigure10Comparators(b *testing.B) {
	for _, algo := range bench.Algorithms {
		for _, ds := range []string{"Wiki", "Web", "Arabic"} {
			b.Run(fmt.Sprintf("%s/%s", algo, ds), func(b *testing.B) {
				d, err := gen.DatasetByName(ds)
				if err != nil {
					b.Fatal(err)
				}
				wl, err := bench.Prepare(algo, d)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunComparator(wl, benchCfg(4)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure11 compares the adaptive engines (Sync / Async / AAP /
// SyncAsync) on SSSP and PageRank.
func BenchmarkFigure11(b *testing.B) {
	modes := []runtime.Mode{runtime.MRASync, runtime.MRAAsync, runtime.MRAAAP, runtime.MRASyncAsync}
	for _, algo := range []string{"SSSP", "PageRank"} {
		for _, ds := range []string{"Wiki", "Web", "Arabic"} {
			for _, mode := range modes {
				b.Run(fmt.Sprintf("%s/%s/%v", algo, ds, mode), func(b *testing.B) {
					runWorkload(b, algo, ds, mode)
				})
			}
		}
	}
}

// --- engine micro-benchmarks -----------------------------------------

// BenchmarkMonoTableFoldDelta measures protocol step 3 on a dense shard.
func BenchmarkMonoTableFoldDelta(b *testing.B) {
	t := monotable.NewDense(agg.ByKind(agg.Sum), 1<<16, 1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.FoldDelta(int64(i&0xffff), 1)
	}
}

// BenchmarkMonoTableDrainFold measures steps 1-2 (drain + accumulate).
func BenchmarkMonoTableDrainFold(b *testing.B) {
	t := monotable.NewDense(agg.ByKind(agg.Min), 1<<16, 1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := int64(i & 0xffff)
		t.FoldDelta(k, float64(i))
		if v, ok := t.Drain(k); ok {
			t.FoldAcc(k, v)
		}
	}
}

// BenchmarkPropagate measures the compiled F' closure over a CSR
// adjacency — the engine's hot path.
func BenchmarkPropagate(b *testing.B) {
	d := gen.Datasets()[1] // LiveJ
	wl, err := bench.Prepare("PageRank", d)
	if err != nil {
		b.Fatal(err)
	}
	sink := 0.0
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wl.Plan.Propagate(int64(i%wl.Plan.N), 1.0, func(dst int64, v float64) {
			sink += v
		})
	}
	_ = sink
}

// BenchmarkParseAnalyzeCheck measures the full frontend on PageRank.
func BenchmarkParseAnalyzeCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := checker.CheckSource(progs.PageRank); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOrderedScan sweeps the delta-stepping-style schedule
// on SSSP over the small-diameter Web graph (the paper's ClueWeb09 case
// where SociaLite's delta stepping wins) and the deep Wiki graph.
func BenchmarkAblationOrderedScan(b *testing.B) {
	for _, ds := range []string{"Web", "Wiki"} {
		for _, ordered := range []bool{false, true} {
			b.Run(fmt.Sprintf("SSSP/%s/ordered=%v", ds, ordered), func(b *testing.B) {
				d, err := gen.DatasetByName(ds)
				if err != nil {
					b.Fatal(err)
				}
				wl, err := bench.Prepare("SSSP", d)
				if err != nil {
					b.Fatal(err)
				}
				cfg := benchCfg(4)
				cfg.OrderedScan = ordered
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := bench.RunMode(wl, runtime.MRASyncAsync, cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(m.Messages), "kv-msgs")
				}
			})
		}
	}
}

// BenchmarkAblationPriorityThreshold sweeps §5.4's importance threshold
// on PageRank.
func BenchmarkAblationPriorityThreshold(b *testing.B) {
	for _, thr := range []float64{0, 1e-7, 1e-5} {
		b.Run(fmt.Sprintf("PageRank/LiveJ/thr=%g", thr), func(b *testing.B) {
			d, err := gen.DatasetByName("LiveJ")
			if err != nil {
				b.Fatal(err)
			}
			wl, err := bench.Prepare("PageRank", d)
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchCfg(4)
			cfg.PriorityThreshold = thr
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := bench.RunMode(wl, runtime.MRASyncAsync, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Messages), "kv-msgs")
			}
		})
	}
}
