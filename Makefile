# Tier-1 verification for this repo: `make check` is what CI
# (.github/workflows/ci.yml) and the ROADMAP's verify step run. The race
# pass covers the packages on the zero-allocation message path (combiner
# → pooled batches → codec → MonoTable fold), where a recycle-contract
# violation would surface as a data race. `go test ./...` includes
# internal/lint, a repo-local static check (builtin-shadowing guard).
.PHONY: check build vet test race bench

check: vet build test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/runtime/... ./internal/transport/... ./internal/monotable/...

# Hot-path microbenches with allocation counts (BENCH_PR1.json records
# the tracked numbers).
bench:
	go test -run xxx -bench 'BenchmarkOutBuf' -benchmem ./internal/runtime/
	go test -run xxx -bench 'BenchmarkCodec' -benchmem ./internal/transport/
