# Tier-1 verification for this repo: `make check` is what CI
# (.github/workflows/ci.yml) and the ROADMAP's verify step run. The race
# pass covers the packages on the zero-allocation message path (combiner
# → pooled batches → codec → MonoTable fold) plus checkpointing, fault
# injection, the lock-free metrics core, and the PR 7 incremental-EDB
# and generator packages (edb, gen), where a recycle-contract violation
# would surface as a data race; -cpu 1,4 runs each test at
# both parallelism levels so the intra-worker subshard scan pool
# (DESIGN.md §9) is raced with real preemption even on small CI boxes;
# it runs -short, which trims
# the chaos matrix (internal/runtime/chaos_test.go) to its
# representative algorithm subset — the full matrix runs race-free under
# `make test`. `make lint` runs the repo-local static analyzers of
# internal/lint (cmd/plvet): recycle, atomicmix, lockblock, shadow,
# kindswitch, errcmp, metricname, condwait — the
# same checks also run under `go test ./internal/lint`, so plain
# `go test ./...` enforces them too. `make metrics-smoke` exercises the
# observability layer end-to-end: the policymetrics experiment on the
# tiny dataset, all six modes. `make churn-smoke` exercises the session
# lifecycle end-to-end: incremental Apply vs cold re-run on the tiny
# dataset across the four session-capable modes (the race pass already
# covers the session tests via ./internal/runtime/... -short). The
# PR 9 membership layer (membership.go, rejoin_test.go: crashw re-join
# matrix, elastic scale drills) also races under ./internal/runtime/...
# -short — the fence/handoff/park interleavings are exactly where a
# race would hide. `make serve-smoke` exercises the PR 10 serving front
# end (internal/server, cmd/plserved) end-to-end: the closed-loop serve
# experiment over real loopback HTTP — lookup/mutate mixes against a
# parked session — finishing with a /metrics scrape that must pass the
# Prometheus exposition conformance check; the race pass covers the
# concurrent-handler and concurrent-session tests
# (./internal/server/..., plus the session hammer under
# ./internal/runtime/...).
.PHONY: check build vet lint test race bench metrics-smoke churn-smoke serve-smoke

check: vet lint build test race metrics-smoke churn-smoke serve-smoke

build:
	go build ./...

vet:
	go vet ./...

lint:
	go run ./cmd/plvet ./...

test:
	go test ./...

race:
	go test -race -short -cpu 1,4 ./internal/runtime/... ./internal/transport/... ./internal/monotable/... ./internal/ckpt/... ./internal/fault/... ./internal/metrics/... ./internal/edb/... ./internal/gen/... ./internal/server/...

metrics-smoke:
	go run ./cmd/plbench -exp policymetrics -smoke -maxwall 60s

churn-smoke:
	go run ./cmd/plbench -exp churn -smoke -maxwall 60s

serve-smoke:
	go run ./cmd/plbench -exp serve -smoke -maxwall 60s

# Hot-path microbenches with allocation counts (BENCH_PR1.json records
# the tracked numbers).
bench:
	go test -run xxx -bench 'BenchmarkOutBuf' -benchmem ./internal/runtime/
	go test -run xxx -bench 'BenchmarkCodec' -benchmem ./internal/transport/
	go test -run xxx -bench 'BenchmarkCounterInc|BenchmarkHistogramObserve' -benchmem ./internal/metrics/
