package powerlog

import (
	"math"
	"strings"
	"testing"

	"powerlog/internal/gen"
	"powerlog/internal/ref"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(4, []Edge{
		{Src: 0, Dst: 1, W: 5}, {Src: 0, Dst: 2, W: 3},
		{Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 3, W: 2},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEndToEndSSSP(t *testing.T) {
	prog, err := Parse(Programs.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "sssp" || prog.Aggregate() != "min" {
		t.Errorf("name=%s agg=%s", prog.Name(), prog.Aggregate())
	}
	rep := prog.Check()
	if !rep.Satisfied {
		t.Fatalf("SSSP must satisfy MRA:\n%s", rep)
	}
	db := NewDatabase()
	db.SetGraph("edge", testGraph(t))
	plan, err := prog.Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{0: 0, 1: 5, 2: 3, 3: 5}
	for k, w := range want {
		if res.Values[k] != w {
			t.Errorf("sssp(%d) = %v, want %v", k, res.Values[k], w)
		}
	}
	if !strings.Contains(Summary(res), "converged=true") {
		t.Errorf("summary: %s", Summary(res))
	}
}

func TestAllCatalogueProgramsParse(t *testing.T) {
	for _, src := range []string{
		Programs.SSSP, Programs.CC, Programs.PageRank, Programs.Adsorption,
		Programs.Katz, Programs.BP, Programs.PathsDAG, Programs.Cost,
		Programs.Viterbi, Programs.SimRank, Programs.LCA, Programs.APSP,
		Programs.CommNet, Programs.GCNForward,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("catalogue program failed to parse: %v", err)
		}
	}
}

func TestCheckSourceRejectsGCN(t *testing.T) {
	rep, err := CheckSource(Programs.GCNForward)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatal("GCN-Forward must fail the MRA check")
	}
}

// TestRunGateForcesNaive verifies the Figure-2 pipeline: a program that
// fails the condition check must not run incrementally/asynchronously
// even when the caller asks for it — Run silently falls back to naive
// synchronous evaluation, which is always correct.
func TestRunGateForcesNaive(t *testing.T) {
	// sum over x² is nonlinear: the checker rejects it; MRA evaluation
	// would square deltas instead of totals and give garbage.
	src := `
r1. q(X,v) :- X=0, v = 2.
r2. q(Y,sum[v1]) :- q(X,v), dag(X,Y), v1 = v * v.
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Check().Satisfied {
		t.Fatal("quadratic program must fail the check")
	}
	// A 2-level DAG: 0 → 1 → 2.
	g, err := NewGraph(3, []Edge{{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.SetGraph("dag", g)
	plan, err := prog.Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Mode: ModeSyncAsync, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Naive semantics: q(1) = q(0)² = 4, q(2) = q(1)² = 16.
	if res.Values[1] != 4 || res.Values[2] != 16 {
		t.Errorf("values = %v; the gate must have failed (async would corrupt these)", res.Values)
	}
}

func TestRewriteFacade(t *testing.T) {
	prog, err := Parse(Programs.PageRank)
	if err != nil {
		t.Fatal(err)
	}
	text, err := prog.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "rank(0,Y,ry)") {
		t.Errorf("rewrite missing init rule:\n%s", text)
	}
	bad, err := Parse(Programs.CommNet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Rewrite(); err == nil {
		t.Error("CommNet rewrite must fail")
	}
}

func TestLoadGraphTSVFacade(t *testing.T) {
	g, err := LoadGraphTSV(strings.NewReader("0 1 2.5\n1 2 1\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestPublicAPIMatchesOracle(t *testing.T) {
	g := gen.Uniform(200, 1200, 30, 99)
	want := ref.Dijkstra(g, 0)
	prog, err := Parse(Programs.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.SetGraph("edge", g)
	plan, err := prog.Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range want {
		if math.IsInf(w, 1) {
			continue
		}
		if math.Abs(res.Values[int64(v)]-w) > 1e-9 {
			t.Fatalf("sssp(%d) = %v, want %v", v, res.Values[int64(v)], w)
		}
	}
}

func TestRelationFacade(t *testing.T) {
	r := NewRelation("attr", 2)
	r.Add(0, 1.5)
	if r.Len() != 1 {
		t.Error("relation add failed")
	}
	db := NewDatabase()
	db.AddRelation(r)
	if !db.HasPred("attr") {
		t.Error("relation not registered")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	if _, err := Parse("not datalog"); err == nil {
		t.Error("parse error expected")
	}
	if _, err := Parse("a(X,v) :- b(X,v)."); err == nil {
		t.Error("non-recursive program should be rejected at analysis")
	}
}
